package trade

import (
	"math"

	"perfpred/internal/workload"
)

// reqState is one in-flight request's lifecycle record. The legacy
// implementation chained fresh closures for every stage of every
// request (thread grant → CPU segments → database calls → response),
// allocating a handful of funcs and captured frames per request. A
// reqState instead carries the stage data in plain fields and a set of
// continuations bound once, when the record is first allocated; retired
// records return to a per-simulator free list, so the steady-state
// request loop allocates nothing.
//
// The continuation methods fire at exactly the simulated instants the
// old closures did, and make their random draws in the same order on
// the same streams, so per-seed results are unchanged.
type reqState struct {
	s   *simulator
	c   *client   // nil for open-stream arrivals
	acc *classAcc // response-time accumulator for the request's class

	app     *appServer
	srv     int
	cls     int // Config.Load index of the request's class (router key)
	d       workload.Demand
	opName  string
	arrival float64
	dbCalls int     // database calls still to make
	segment float64 // CPU time per inter-call segment
	xr      *xreq   // non-nil when serving a remote pool's request

	next *reqState // free-list link

	// Continuations, bound to this record at allocation so scheduling
	// them costs no closure allocation.
	onSlot   func() // application-server thread granted
	onCS     func() // critical-section lock granted
	onCSDone func() // critical-section CPU burst finished
	onSeg    func() // CPU segment finished
	onDB     func() // database agent granted
	onDBDone func() // database CPU burst finished
	onLat    func() // per-call latency elapsed
}

// getReq takes a request record from the free list, allocating (and
// binding its continuations) only when the list is empty — i.e. only
// while the in-flight population is still growing.
func (s *simulator) getReq() *reqState {
	r := s.reqFree
	if r != nil {
		s.reqFree = r.next
		r.next = nil
		s.poolReuses++
		return r
	}
	s.poolAllocs++
	r = &reqState{s: s}
	r.onSlot = r.slotGranted
	r.onCS = r.csGranted
	r.onCSDone = r.csDone
	r.onSeg = r.segDone
	r.onDB = r.dbGranted
	r.onDBDone = r.dbDone
	r.onLat = r.latDone
	return r
}

// putReq retires a finished request record to the free list.
func (s *simulator) putReq(r *reqState) {
	r.c = nil
	r.acc = nil
	r.app = nil
	r.opName = ""
	r.xr = nil
	r.next = s.reqFree
	s.reqFree = r
}

// slotGranted runs when the application server admits the request: the
// servlet thread is held from here to the response. It samples the
// request's database-call count (plus the session-cache miss penalty
// for closed clients), draws the total CPU demand, and enters either
// the critical section (§8.1) or the first CPU segment.
func (r *reqState) slotGranted() {
	s := r.s
	r.dbCalls = s.sampleCalls(r.d.DBCallsPerRequest)
	if r.app.cache != nil && r.c != nil {
		size := s.sessionBytes[r.c.id]
		if !r.app.cache.touch(r.c.id, size) {
			r.dbCalls += s.sampleCalls(s.cfg.Cache.MissExtraDBCalls)
		}
	}
	totalCPU := s.serve.Exp(r.d.AppServerTime) // reference-scale demand; CPU speed scales service
	r.segment = totalCPU / float64(r.dbCalls+1)
	if cs := s.cfg.CriticalSection; cs != nil && r.c != nil && s.serve.Float64() < cs.Fraction {
		// The request must hold the server-global lock while executing
		// the protected section — the implicit queue of §8.1.
		r.app.csLock.Acquire(0, r.onCS)
		return
	}
	r.app.cpu.Submit(0, r.segment, r.onSeg)
}

// csGranted runs when the critical-section lock is granted: the locked
// CPU burst's length is drawn now, as the legacy path did.
func (r *reqState) csGranted() {
	r.app.cpu.Submit(0, r.s.serve.Exp(r.s.cfg.CriticalSection.MeanTime), r.onCSDone)
}

// csDone releases the lock (possibly admitting the next waiter
// synchronously) and starts the request's ordinary CPU segments.
func (r *reqState) csDone() {
	r.app.csLock.Release()
	r.app.cpu.Submit(0, r.segment, r.onSeg)
}

// segDone runs when a CPU segment completes: either the response is
// ready, or the request queues for a database agent in its server's
// own FIFO (§2).
func (r *reqState) segDone() {
	if r.dbCalls == 0 {
		r.finish()
		return
	}
	r.s.dbSlots.Acquire(r.srv, r.onDB)
}

// dbGranted runs when a database agent is granted; the call's CPU time
// is drawn at grant time, exactly where the legacy closure drew it.
func (r *reqState) dbGranted() {
	s := r.s
	perCall := r.d.DBTimePerCall
	if r.app.cache != nil && r.c != nil && s.cfg.Cache.MissDBTimePerCall > 0 {
		// The session read uses the configured miss cost; the request's
		// own calls keep their type's cost. Using the max keeps the
		// model simple while preserving the extra-work effect.
		perCall = math.Max(perCall, s.cfg.Cache.MissDBTimePerCall)
	}
	s.dbCPU.Submit(r.srv, s.serve.Exp(perCall), r.onDBDone)
}

// dbDone releases the database agent (possibly granting a waiter
// synchronously) and either waits out the call's off-CPU latency or
// resumes on the application server's CPU.
func (r *reqState) dbDone() {
	s := r.s
	s.dbSlots.Release()
	if r.d.DBLatencyPerCall > 0 {
		// Pure per-call latency (disk/network): the thread waits it
		// out off-CPU.
		s.eng.Schedule(s.serve.Exp(r.d.DBLatencyPerCall), r.onLat)
		return
	}
	r.latDone()
}

// latDone starts the next CPU segment after a database call fully
// completes.
func (r *reqState) latDone() {
	r.dbCalls--
	r.app.cpu.Submit(0, r.segment, r.onSeg)
}

// finish releases the servlet thread (which may synchronously admit
// the next queued request), records the response time, and — for a
// closed client — schedules the next request after a think time. The
// think-time draw deliberately happens after the thread release, so a
// synchronously admitted request makes its draws first, exactly as the
// legacy nested closures ordered them.
func (r *reqState) finish() {
	s := r.s
	if s.router != nil {
		// Service-side completion at the serving pool: r.arrival is this
		// pool's admission time for both local and hop-delivered requests,
		// so the reported response time excludes hop latency. Always
		// reported (not measurement-gated) — the router's in-flight
		// conservation is control state, not statistics.
		s.router.Completed(int(s.poolID), r.cls, s.eng.Now()-r.arrival)
	}
	if r.xr != nil {
		// A remote pool's request: release the thread, then ship the
		// response back across the shard boundary instead of recording
		// locally — the origin pool owns the client and its statistics.
		xr := r.xr
		r.app.slots.Release()
		if s.measuring {
			r.app.completed++
		}
		s.sendSeq++
		s.shard.Send(xr.homeShard, s.poolID, s.sendSeq, s.xLatency, xr.ret)
		s.putReq(r)
		return
	}
	r.app.slots.Release()
	rt := s.eng.Now() - r.arrival
	if s.intercept != nil {
		s.intercept(s.eng.Now(), rt)
	} else if s.measuring {
		r.acc.record(rt)
		if s.overall != nil {
			s.overall.Add(rt)
		}
		if s.ops != nil && r.opName != "" {
			s.ops.record(r.opName, rt)
		}
		r.app.completed++
	}
	if c := r.c; c != nil {
		s.eng.Schedule(s.thinkDelay(c), c.issue)
	}
	s.putReq(r)
}
