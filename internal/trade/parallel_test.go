package trade

import (
	"fmt"
	"reflect"
	"runtime"
	"testing"

	"perfpred/internal/obs"
	"perfpred/internal/sim"
	"perfpred/internal/workload"
)

// figure2Counts is a figure-2-style client-count grid for AppServF:
// fractions of the ~1440-client saturation population from well below
// the knee to well past it.
func figure2Counts() []int {
	return []int{260, 460, 650, 1050, 1300, 1560, 1890, 2210}
}

// TestMeasureCurveParallelMatchesSerial is the determinism contract of
// the parallel evaluation layer: a figure-2-style sweep run through
// the worker pool must produce Results identical — field for field,
// including reservoir samples — to the serial loop with the same seed.
func TestMeasureCurveParallelMatchesSerial(t *testing.T) {
	counts := figure2Counts()
	opt := MeasureOptions{Seed: 17, WarmUp: 5, Duration: 20, Workers: 1}
	serial, err := MeasureCurve(workload.AppServF(), counts, 0, opt)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 4, 16} {
		opt.Workers = workers
		pooled, err := MeasureCurve(workload.AppServF(), counts, 0, opt)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(pooled) != len(serial) {
			t.Fatalf("workers=%d: %d points, want %d", workers, len(pooled), len(serial))
		}
		for i := range serial {
			if pooled[i].Clients != serial[i].Clients {
				t.Fatalf("workers=%d point %d: clients %d, want %d", workers, i, pooled[i].Clients, serial[i].Clients)
			}
			if !reflect.DeepEqual(pooled[i].Res, serial[i].Res) {
				t.Fatalf("workers=%d point %d (n=%d): pooled result differs from serial\npooled: %v\nserial: %v",
					workers, i, serial[i].Clients, pooled[i].Res, serial[i].Res)
			}
		}
	}
}

// TestMeasureCurveMetricsUnderParallelSweep runs a metrics-enabled
// parallel sweep: every concurrent simulator flushes into the same
// shared registry, so this is the race-tier proof that the atomic
// publish path is concurrency-safe, and that the totals survive the
// fan-out (throughput × duration × points completions land in the
// completed counter).
func TestMeasureCurveMetricsUnderParallelSweep(t *testing.T) {
	reg := obs.NewRegistry()
	EnableMetrics(reg)
	sim.EnableMetrics(reg)
	defer func() {
		EnableMetrics(nil)
		sim.EnableMetrics(nil)
	}()
	counts := []int{200, 500, 900, 1300}
	opt := MeasureOptions{Seed: 17, WarmUp: 5, Duration: 20, Workers: 8}
	points, err := MeasureCurve(workload.AppServF(), counts, 0, opt)
	if err != nil {
		t.Fatal(err)
	}
	want := uint64(0)
	for _, p := range points {
		for _, c := range p.Res.PerClass {
			want += uint64(c.Completed)
		}
	}
	snap := reg.Snapshot()
	if got := snap.Counters["trade_requests_completed"]; got != want {
		t.Fatalf("trade_requests_completed = %d, want the sweep's %d completions", got, want)
	}
	if snap.Counters["sim_events_fired"] == 0 {
		t.Fatal("parallel sweep fired no sim events into the registry")
	}
}

// TestMeasureCurveParallelMixedWorkload repeats the determinism check
// on the heterogeneous (buy-mix) sweep used by figure 4.
func TestMeasureCurveParallelMixedWorkload(t *testing.T) {
	counts := []int{200, 500, 900}
	opt := MeasureOptions{Seed: 3, WarmUp: 5, Duration: 15, Workers: 1}
	serial, err := MeasureCurve(workload.AppServS(), counts, 0.25, opt)
	if err != nil {
		t.Fatal(err)
	}
	opt.Workers = 8
	pooled, err := MeasureCurve(workload.AppServS(), counts, 0.25, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(pooled, serial) {
		t.Fatal("parallel mixed-workload curve differs from serial")
	}
}

// BenchmarkMeasureCurve is the wall-clock evidence for the parallel
// evaluation layer: a figure-scale sweep (8 client populations on
// AppServF) at 1 worker versus all cores. On a machine with >= 4 cores
// the all-core run must come in at least ~2x faster; on fewer cores the
// two runs coincide (the pool degenerates to the serial loop). Run with:
//
//	go test -run '^$' -bench BenchmarkMeasureCurve -benchtime 2x ./internal/trade
func BenchmarkMeasureCurve(b *testing.B) {
	counts := figure2Counts()
	for _, workers := range []int{1, runtime.GOMAXPROCS(0)} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			opt := MeasureOptions{Seed: 17, WarmUp: 10, Duration: 60, Workers: workers}
			for i := 0; i < b.N; i++ {
				if _, err := MeasureCurve(workload.AppServF(), counts, 0, opt); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
