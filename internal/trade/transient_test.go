package trade

import (
	"testing"

	"perfpred/internal/workload"
)

func transientConfig(clients int) Config {
	return Config{
		Server:   workload.AppServF(),
		DB:       workload.CaseStudyDB(),
		Demands:  workload.CaseStudyDemands(),
		Load:     workload.TypicalWorkload(clients),
		Seed:     29,
		Duration: 120,
	}
}

func TestTransientCurveValidation(t *testing.T) {
	if _, err := TransientCurve(transientConfig(100), 0); err == nil {
		t.Fatal("zero bucket should fail")
	}
	bad := transientConfig(100)
	bad.Duration = 0
	if _, err := TransientCurve(bad, 10); err == nil {
		t.Fatal("invalid config should fail")
	}
}

func TestTransientCurveShape(t *testing.T) {
	curve, err := TransientCurve(transientConfig(1800), 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(curve) < 12 {
		t.Fatalf("buckets = %d", len(curve))
	}
	// Bucket edges are evenly spaced.
	for i, p := range curve {
		if want := float64(i+1) * 10; p.Time != want {
			t.Fatalf("bucket %d edge = %v, want %v", i, p.Time, want)
		}
	}
	// A saturated cold start ramps up: the first non-empty bucket's RT
	// sits below the last bucket's.
	var first, last TransientPoint
	for _, p := range curve {
		if p.Completed > 0 {
			if first.Completed == 0 {
				first = p
			}
			last = p
		}
	}
	if first.Completed == 0 {
		t.Fatal("no completions recorded")
	}
	if first.MeanRT >= last.MeanRT {
		t.Fatalf("cold-start ramp missing: first %v, last %v", first.MeanRT, last.MeanRT)
	}
	// Total completions are plausible: roughly max throughput × time.
	total := 0
	for _, p := range curve {
		total += p.Completed
	}
	if total < 10000 {
		t.Fatalf("completions = %d, implausibly low", total)
	}
}

func TestTransientCurveDeterministic(t *testing.T) {
	a, err := TransientCurve(transientConfig(600), 20)
	if err != nil {
		t.Fatal(err)
	}
	b, err := TransientCurve(transientConfig(600), 20)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i].MeanRT != b[i].MeanRT || a[i].Completed != b[i].Completed {
			t.Fatalf("bucket %d differs across identical runs", i)
		}
	}
}
