package trade

// PoolRouter is the fleet layer's per-request routing hook: when a
// sharded run sets Config.Router, every closed client consults it for
// each request instead of the static pool assignment, and the chosen
// pool serves the request (its own pool directly, a sibling via the
// cross-pool message hop). The simulator reports service-side
// lifecycle edges back through Started/Completed so the router can
// maintain per-pool load state with O(1) counter updates.
//
// Threading contract: Route is called on the ORIGIN pool's shard
// goroutine, in that pool's own event order; Started and Completed are
// called on the SERVING pool's shard goroutine. A router must therefore
// keep per-pool state writable only from the pool's owning shard and
// may publish cross-pool views only at window barriers (see
// sim.Coordinator.SetBarrierHook), which is also what keeps routing
// decisions identical at any shard count. Implementations must not
// allocate on any of these calls — they sit on the zero-alloc request
// path.
type PoolRouter interface {
	// Route picks the serving pool for the next request of the client
	// class (the index of the class's population in Config.Load) issued
	// by pool origin. Returning origin serves the request locally;
	// anything else forwards it over the cross-pool hop (two
	// ShardLatency delays are added to the client's response time).
	Route(origin, class int) int
	// Started reports that a request of the class began service-side
	// accounting at the pool: immediately for a local decision, at hop
	// arrival for a remote one. Open-stream arrivals (never routed)
	// report here too, so in-flight state covers the pool's whole load.
	Started(pool, class int)
	// Completed reports a request of the class finishing at the pool
	// together with its service-side response time (arrival at the pool
	// to response, excluding hop latency).
	Completed(pool, class int, rt float64)
}
