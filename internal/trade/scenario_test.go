package trade

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"perfpred/internal/obs"
	"perfpred/internal/scenario"
	"perfpred/internal/workload"
)

// mixedScenario mirrors workload.MixedWorkload(400, 0.25) as a
// declarative spec with exponential think times.
func mixedScenario(t testing.TB) *scenario.Compiled {
	t.Helper()
	c, err := scenario.New("mixed").
		AddClosed("buy", 100, scenario.Exponential(workload.ThinkTimeMean), map[string]float64{"buy": 1}).
		AddClosed("browse", 300, scenario.Exponential(workload.ThinkTimeMean), map[string]float64{"browse": 1}).
		Compile("")
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// fleetScenario mixes a closed cohort with bursty and patterned open
// cohorts — the shape the determinism and alloc contracts must hold
// under.
func fleetScenario(t testing.TB) *scenario.Compiled {
	t.Helper()
	c, err := scenario.New("fleet").
		AddClosed("shoppers", 120, scenario.Lognormal(workload.ThinkTimeMean, 1.5), map[string]float64{"browse": 0.75, "buy": 0.25}).
		AddPoisson("portal", 20, map[string]float64{"browse": 1}).
		Pattern(scenario.Diurnal(60, 0.5, 0)).
		AddMMPP("spikes", []scenario.MMPPStateSpec{{Rate: 2, MeanDwell: 20}, {Rate: 30, MeanDwell: 4}}, map[string]float64{"buy": 1}).
		Compile("")
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func scenarioConfig(sc *scenario.Compiled) Config {
	return Config{
		Server:       workload.AppServF(),
		DB:           workload.CaseStudyDB(),
		Demands:      workload.CaseStudyDemands(),
		Scenario:     sc,
		Seed:         29,
		WarmUp:       10,
		Duration:     120,
		MaxRTSamples: 64,
	}
}

// A scenario whose cohorts are all closed with exponential think
// times declares exactly a legacy workload; the run must be
// bit-identical to the same workload configured through Load — same
// draw sequences, same trajectory, same statistics.
func TestScenarioClosedEquivalentToLegacy(t *testing.T) {
	legacy := scenarioConfig(nil)
	legacy.Scenario = nil
	legacy.Load = workload.MixedWorkload(400, 0.25)
	ref, err := Run(legacy)
	if err != nil {
		t.Fatal(err)
	}
	spec := scenarioConfig(mixedScenario(t))
	got, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, "scenario vs legacy", ref, got)
}

// Fixed-seed spec runs must be bit-identical at 1, 2 and 4 shards:
// cohort generator streams are pure functions of (seed, pool, cohort)
// via sim.SplitSeed, so the pool→shard mapping cannot perturb them.
func TestScenarioShardDeterminism(t *testing.T) {
	base := scenarioConfig(fleetScenario(t))
	base.Pools = 4
	base.Duration = 60

	var ref *Result
	for _, shards := range []int{1, 2, 4} {
		cfg := base
		cfg.Shards = shards
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		if shards == 1 {
			ref = res
			continue
		}
		sameResult(t, fmt.Sprintf("shards=%d vs 1", shards), ref, res)
	}

	// Golden fingerprint: pins the trajectory across releases, not just
	// across shard counts within one build. Regenerate with
	// UPDATE_SCENARIO_GOLDEN=1 go test ./internal/trade -run ShardDeterminism
	var fp strings.Builder
	for _, name := range sortedClassNames(ref) {
		cr := ref.PerClass[name]
		fmt.Fprintf(&fp, "%s %d %.17g %.17g\n", name, cr.Completed, cr.MeanRT, cr.RTStdDev)
	}
	golden := filepath.Join("testdata", "scenario_fleet.golden")
	if os.Getenv("UPDATE_SCENARIO_GOLDEN") != "" {
		if err := os.WriteFile(golden, []byte(fp.String()), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("golden missing (run with UPDATE_SCENARIO_GOLDEN=1 to create): %v", err)
	}
	if string(want) != fp.String() {
		t.Errorf("scenario fleet fingerprint drifted:\ngot:\n%swant:\n%s", fp.String(), want)
	}
}

func sortedClassNames(r *Result) []string {
	names := make([]string, 0, len(r.PerClass))
	for name := range r.PerClass {
		names = append(names, name)
	}
	for i := 1; i < len(names); i++ {
		for j := i; j > 0 && names[j] < names[j-1]; j-- {
			names[j], names[j-1] = names[j-1], names[j]
		}
	}
	return names
}

// Scenario arrival sampling must stay zero-alloc in steady state with
// metrics enabled — the acceptance criterion of the subsystem. The
// scenario covers every generator kind that can run without files:
// lognormal think loops, diurnal-thinned Poisson and MMPP.
func TestScenarioSteadyStateZeroAlloc(t *testing.T) {
	reg := obs.NewRegistry()
	EnableMetrics(reg)
	defer EnableMetrics(nil)
	cfg := scenarioConfig(fleetScenario(t))
	cfg.Duration = 100000 // never reached; time advances manually
	s, until := steadySim(t, cfg)
	allocs := testing.AllocsPerRun(50, func() {
		until += 2
		s.eng.Run(until, 0)
	})
	if allocs != 0 {
		t.Fatalf("scenario request loop allocates %v objects per 2 simulated seconds, want 0", allocs)
	}
	if res := s.collect(); res.Throughput <= 0 {
		t.Fatal("empty collection")
	}
}

// Trace-replay cohorts feed recorded arrivals through the same pooled
// lifecycle, honouring recorded types and loop seams.
func TestScenarioTraceReplayRun(t *testing.T) {
	dir := t.TempDir()
	var sb strings.Builder
	sb.WriteString("time,type\n")
	for i := 0; i < 200; i++ {
		typ := "browse"
		if i%4 == 3 {
			typ = "buy"
		}
		fmt.Fprintf(&sb, "%.2f,%s\n", float64(i)*0.05, typ)
	}
	if err := os.WriteFile(filepath.Join(dir, "replay.csv"), []byte(sb.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	sc, err := scenario.New("replay").AddTrace("recorded", "replay.csv", true).Compile(dir)
	if err != nil {
		t.Fatal(err)
	}
	cfg := scenarioConfig(sc)
	cfg.WarmUp = 5
	cfg.Duration = 60
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cr := res.PerClass["recorded"]
	// 200 arrivals per 10 s cycle = 20/s; the 60 s window sees ≈ 1200.
	if cr.Completed < 1000 || cr.Completed > 1400 {
		t.Fatalf("trace cohort completed %d, want ≈ 1200", cr.Completed)
	}
	if cr.MeanRT <= 0 {
		t.Fatal("trace cohort has no response times")
	}
}

// Windows reports the transient trajectory of a time-varying
// scenario: a flash sale must lift both throughput and response time
// during the spike relative to the pre-spike baseline.
func TestScenarioWindowsFlashSale(t *testing.T) {
	sc, err := scenario.New("flash").
		AddPoisson("shop", 40, map[string]float64{"browse": 1}).
		Pattern(scenario.FlashSale(120, 20, 60, 40, 3.5)).
		Compile("")
	if err != nil {
		t.Fatal(err)
	}
	cfg := scenarioConfig(sc)
	cfg.Duration = 300
	points, err := Windows(cfg, 30)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 10 {
		t.Fatalf("got %d windows, want 10", len(points))
	}
	base := points[2] // 60–90 s: steady pre-flash
	peak := points[5] // 150–180 s: inside the hold
	if peak.Throughput < 2*base.Throughput {
		t.Fatalf("flash window throughput %v not well above baseline %v", peak.Throughput, base.Throughput)
	}
	if peak.MeanRT <= base.MeanRT {
		t.Fatalf("flash window meanRT %v not above baseline %v under 3.5× load", peak.MeanRT, base.MeanRT)
	}
	if _, err := Windows(cfg, 0); err == nil {
		t.Fatal("zero window accepted")
	}
	cfg.Pools = 2
	if _, err := Windows(cfg, 30); err == nil {
		t.Fatal("sharded windowed run accepted")
	}
}

func TestScenarioConfigValidation(t *testing.T) {
	sc := mixedScenario(t)
	cfg := scenarioConfig(sc)
	cfg.Load = workload.TypicalWorkload(10)
	if _, err := Run(cfg); err == nil || !strings.Contains(err.Error(), "mutually exclusive") {
		t.Fatalf("Scenario+Load accepted: %v", err)
	}
	cfg = scenarioConfig(sc)
	cfg.DetailedOperations = true
	if _, err := Run(cfg); err == nil || !strings.Contains(err.Error(), "DetailedOperations") {
		t.Fatalf("Scenario+DetailedOperations accepted: %v", err)
	}
	cfg = scenarioConfig(sc)
	cfg.Cache = &CacheConfig{SizeBytes: 1 << 20, SessionBytesMean: 1024, MissExtraDBCalls: 1}
	if _, err := Run(cfg); err == nil || !strings.Contains(err.Error(), "session cache") {
		t.Fatalf("Scenario+Cache accepted: %v", err)
	}
	// A cohort whose mix names a request type with no demand must fail
	// the demand-table check, same as a legacy Load.
	orphan, err := scenario.New("orphan").
		AddPoisson("ghost", 5, map[string]float64{"checkout": 1}).Compile("")
	if err != nil {
		t.Fatal(err)
	}
	cfg = scenarioConfig(orphan)
	if _, err := Run(cfg); err == nil || !strings.Contains(err.Error(), "no demand") {
		t.Fatalf("orphan request type accepted: %v", err)
	}
}
