package trade

import (
	"math"
	"testing"
	"testing/quick"

	"perfpred/internal/workload"
)

func TestLRUHitsAndMisses(t *testing.T) {
	c := newLRUCache(100)
	if c.touch(1, 40) {
		t.Fatal("first access must miss")
	}
	if !c.touch(1, 40) {
		t.Fatal("second access must hit")
	}
	if c.touch(2, 40) {
		t.Fatal("new client must miss")
	}
	// Both fit (80 <= 100): no eviction yet.
	if !c.touch(1, 40) || !c.touch(2, 40) {
		t.Fatal("both sessions should be resident")
	}
	if c.evicts != 0 {
		t.Fatalf("evicts = %d, want 0", c.evicts)
	}
}

func TestLRUEvictsLeastRecentlyUsed(t *testing.T) {
	c := newLRUCache(100)
	c.touch(1, 50)
	c.touch(2, 50)
	c.touch(1, 50) // 1 most recent
	c.touch(3, 50) // evicts 2
	if !c.touch(1, 50) {
		t.Fatal("client 1 should still be resident")
	}
	if c.touch(2, 50) {
		t.Fatal("client 2 should have been evicted")
	}
	if c.evicts == 0 {
		t.Fatal("expected evictions")
	}
}

func TestLRUOversizedSessionNeverAdmitted(t *testing.T) {
	c := newLRUCache(10)
	if c.touch(1, 100) {
		t.Fatal("oversized session cannot hit")
	}
	if c.touch(1, 100) {
		t.Fatal("oversized session must keep missing")
	}
	if c.used != 0 {
		t.Fatalf("used = %d, want 0", c.used)
	}
}

func TestLRUMissRateAndReset(t *testing.T) {
	c := newLRUCache(100)
	if c.missRate() != 0 {
		t.Fatal("empty cache miss rate should be 0")
	}
	c.touch(1, 10) // miss
	c.touch(1, 10) // hit
	if got := c.missRate(); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("miss rate = %v, want 0.5", got)
	}
	c.resetStats()
	if c.missRate() != 0 {
		t.Fatal("resetStats should zero counters")
	}
	if !c.touch(1, 10) {
		t.Fatal("contents must survive resetStats")
	}
}

// Property: used bytes never exceed capacity and equal the sum of
// resident entries, for any access pattern.
func TestLRUInvariantProperty(t *testing.T) {
	f := func(ops []uint16) bool {
		c := newLRUCache(1000)
		for _, op := range ops {
			client := int(op % 64)
			size := int64(op%97) + 1
			c.touch(client, size)
			if c.used > 1000 || c.used < 0 {
				return false
			}
			var sum int64
			for e := c.order.Front(); e != nil; e = e.Next() {
				sum += e.Value.(*lruEntry).bytes
			}
			if sum != c.used || c.order.Len() != len(c.entries) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestCacheVariantDegradesWhenWorkingSetExceedsCache(t *testing.T) {
	// §7.2: when the workload does not fit in main memory, misses cost
	// an extra database call and performance drops. A cache big enough
	// for every session behaves like the no-cache baseline.
	opt := MeasureOptions{Seed: 3, WarmUp: 40, Duration: 120}
	load := workload.TypicalWorkload(400)

	base := baseConfig(workload.AppServF(), load, opt)
	baseRes, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}

	big := base
	big.Cache = &CacheConfig{SizeBytes: 1 << 40, SessionBytesMean: 4096, MissExtraDBCalls: 1}
	bigRes, err := Run(big)
	if err != nil {
		t.Fatal(err)
	}
	if bigRes.CacheMissRate > 0.02 {
		t.Fatalf("big cache miss rate = %v, want ≈0", bigRes.CacheMissRate)
	}

	small := base
	// Room for only ~10% of the 400 sessions.
	small.Cache = &CacheConfig{SizeBytes: 40 * 4096, SessionBytesMean: 4096, MissExtraDBCalls: 1}
	smallRes, err := Run(small)
	if err != nil {
		t.Fatal(err)
	}
	if smallRes.CacheMissRate < 0.5 {
		t.Fatalf("small cache miss rate = %v, want high", smallRes.CacheMissRate)
	}
	if smallRes.MeanRT <= bigRes.MeanRT {
		t.Fatalf("thrashing cache mean RT %v should exceed big-cache %v", smallRes.MeanRT, bigRes.MeanRT)
	}
	_ = baseRes
}
