package trade

import (
	"math"
	"testing"

	"perfpred/internal/sim"
	"perfpred/internal/stats"
)

// TestReservoirExactBelowCapacity pins the boundary behaviour: up to
// maxSample observations the buffer retains everything — quantiles are
// exact, no replacement draws are made — and the first observation past
// capacity switches to reservoir replacement without growing the
// buffer.
func TestReservoirExactBelowCapacity(t *testing.T) {
	acc := &classAcc{maxSample: 100, rng: sim.NewStream(1)}
	data := sim.NewStream(2)
	var all []float64
	for i := 0; i < 100; i++ {
		v := data.Exp(1)
		all = append(all, v)
		acc.record(v)
	}
	if len(acc.samples) != 100 {
		t.Fatalf("at capacity: %d samples, want 100", len(acc.samples))
	}
	for i, v := range all {
		if acc.samples[i] != v {
			t.Fatalf("sample %d mutated during filling phase", i)
		}
	}
	// The replacement stream must be untouched during the filling
	// phase: its first draw still matches a fresh stream's.
	if acc.rng.Intn(1000) != sim.NewStream(1).Intn(1000) {
		t.Fatal("reservoir stream consumed draws before the buffer filled")
	}
	acc.rng = sim.NewStream(1)
	acc.record(data.Exp(1))
	if len(acc.samples) != 100 {
		t.Fatalf("past capacity: %d samples, want 100 (bounded)", len(acc.samples))
	}
}

// TestReservoirQuantileUnbiased compares reservoir-estimated quantiles
// against exact quantiles of the same stream: individual reservoirs
// scatter, but across seeds the estimates centre on the truth.
func TestReservoirQuantileUnbiased(t *testing.T) {
	const n = 20000
	const cap = 500
	data := sim.NewStream(9)
	all := make([]float64, n)
	for i := range all {
		all[i] = data.Exp(1)
	}
	exact50 := stats.Percentile(append([]float64(nil), all...), 50)
	exact90 := stats.Percentile(append([]float64(nil), all...), 90)

	var sum50, sum90 float64
	const seeds = 30
	for seed := int64(0); seed < seeds; seed++ {
		acc := &classAcc{maxSample: cap, rng: sim.NewStream(seed)}
		for _, v := range all {
			acc.record(v)
		}
		if acc.seen != n || len(acc.samples) != cap {
			t.Fatalf("seen=%d len=%d, want %d and %d", acc.seen, len(acc.samples), n, cap)
		}
		sum50 += stats.Percentile(append([]float64(nil), acc.samples...), 50)
		sum90 += stats.Percentile(append([]float64(nil), acc.samples...), 90)
	}
	if avg := sum50 / seeds; math.Abs(avg-exact50)/exact50 > 0.05 {
		t.Errorf("mean reservoir p50 = %v, exact %v: bias beyond 5%%", avg, exact50)
	}
	if avg := sum90 / seeds; math.Abs(avg-exact90)/exact90 > 0.05 {
		t.Errorf("mean reservoir p90 = %v, exact %v: bias beyond 5%%", avg, exact90)
	}
}

// TestStreamingMatchesReservoirPercentiles runs the same measurement
// in both percentile modes: the P² estimates must land near the
// reservoir (here: complete-sample) percentiles while retaining no
// sample buffer at all.
func TestStreamingMatchesReservoirPercentiles(t *testing.T) {
	base := allocConfig()
	base.WarmUp = 10
	base.Duration = 300
	base.MaxRTSamples = 0 // complete samples: the exact side of the comparison

	reservoir, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	streamCfg := base
	streamCfg.StreamingPercentiles = true
	streaming, err := Run(streamCfg)
	if err != nil {
		t.Fatal(err)
	}
	// Identical seeds: the aggregate statistics agree exactly.
	if reservoir.MeanRT != streaming.MeanRT || reservoir.Throughput != streaming.Throughput {
		t.Fatalf("percentile mode changed aggregates: %v vs %v", reservoir, streaming)
	}
	for name, sc := range streaming.PerClass {
		if sc.Samples != nil {
			t.Fatalf("class %q: streaming run retained a sample buffer", name)
		}
		if sc.Quantiles == nil {
			t.Fatalf("class %q: streaming run has no quantile estimators", name)
		}
		rc := reservoir.PerClass[name]
		for _, p := range []float64{50, 90} {
			got, want := sc.Percentile(p), rc.Percentile(p)
			if want > 0 && math.Abs(got-want)/want > 0.15 {
				t.Errorf("class %q p%v: streaming %v vs sampled %v beyond 15%%", name, p, got, want)
			}
		}
	}
	if streaming.OverallQuantiles == nil {
		t.Fatal("streaming run should carry overall quantile estimators")
	}
	op90, rp90 := streaming.OverallPercentile(90), reservoir.OverallPercentile(90)
	if math.Abs(op90-rp90)/rp90 > 0.15 {
		t.Errorf("overall p90: streaming %v vs sampled %v beyond 15%%", op90, rp90)
	}
}
