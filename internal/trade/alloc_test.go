package trade

import (
	"testing"

	"perfpred/internal/obs"
	"perfpred/internal/workload"
)

// steadySim builds a simulator, runs it past warm-up with measurement
// on, and primes every pool (request records, station jobs, ring
// buffers, reservoir buffers) so subsequent engine advances exercise
// only the steady-state path.
func steadySim(t testing.TB, cfg Config) (*simulator, float64) {
	t.Helper()
	s, err := newSimulator(cfg, simOptions{})
	if err != nil {
		t.Fatal(err)
	}
	s.eng.Run(cfg.WarmUp, 0)
	s.resetStats()
	s.measuring = true
	until := cfg.WarmUp + 60 // fills the small reservoirs and warms all pools
	s.eng.Run(until, 0)
	return s, until
}

func allocConfig() Config {
	return Config{
		Server:       workload.AppServF(),
		DB:           workload.CaseStudyDB(),
		Demands:      workload.CaseStudyDemands(),
		Load:         workload.MixedWorkload(400, 0.25),
		Seed:         11,
		WarmUp:       10,
		Duration:     100000, // never reached; the tests advance time manually
		MaxRTSamples: 128,
	}
}

// TestSteadyStateRequestLoopZeroAlloc is the tentpole's contract: once
// the pools are primed and the reservoirs full, advancing the
// simulation — thousands of complete request lifecycles with think
// times, CPU segments and database calls — allocates nothing.
func TestSteadyStateRequestLoopZeroAlloc(t *testing.T) {
	s, until := steadySim(t, allocConfig())
	allocs := testing.AllocsPerRun(50, func() {
		until += 2
		s.eng.Run(until, 0)
	})
	if allocs != 0 {
		t.Fatalf("steady-state request loop allocates %v objects per 2 simulated seconds, want 0", allocs)
	}
}

// TestSteadyStateZeroAllocStreaming repeats the contract with P²
// streaming percentiles, whose Add path must also be allocation-free.
func TestSteadyStateZeroAllocStreaming(t *testing.T) {
	cfg := allocConfig()
	cfg.StreamingPercentiles = true
	s, until := steadySim(t, cfg)
	allocs := testing.AllocsPerRun(50, func() {
		until += 2
		s.eng.Run(until, 0)
	})
	if allocs != 0 {
		t.Fatalf("streaming-percentile request loop allocates %v objects per 2 simulated seconds, want 0", allocs)
	}
}

// TestSteadyStateZeroAllocDetailed covers the §3.1 operation-level
// workload: browse operation picks and buy-session advancement must
// stay pooled too.
func TestSteadyStateZeroAllocDetailed(t *testing.T) {
	cfg := allocConfig()
	cfg.DetailedOperations = true
	s, until := steadySim(t, cfg)
	allocs := testing.AllocsPerRun(50, func() {
		until += 2
		s.eng.Run(until, 0)
	})
	if allocs != 0 {
		t.Fatalf("detailed-operations request loop allocates %v objects per 2 simulated seconds, want 0", allocs)
	}
}

// TestSteadyStateZeroAllocWithMetrics repeats the zero-alloc contract
// with the observability layer registered and enabled: hot-path
// instrumentation uses plain per-instance counters flushed in bulk, so
// enabling metrics must not cost a single allocation per advance.
func TestSteadyStateZeroAllocWithMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	EnableMetrics(reg)
	defer EnableMetrics(nil)
	s, until := steadySim(t, allocConfig())
	allocs := testing.AllocsPerRun(50, func() {
		until += 2
		s.eng.Run(until, 0)
	})
	if allocs != 0 {
		t.Fatalf("metrics-enabled request loop allocates %v objects per 2 simulated seconds, want 0", allocs)
	}
	// The flush path (collect) must not allocate either, beyond what
	// collect itself already does — and it must actually publish.
	if res := s.collect(); res.Throughput <= 0 {
		t.Fatal("empty collection")
	}
	snap := reg.Snapshot()
	if snap.Counters["trade_requests_completed"] == 0 {
		t.Fatal("metrics enabled but trade_requests_completed stayed zero after collect")
	}
}

func BenchmarkRequestLoop(b *testing.B) {
	s, until := steadySim(b, allocConfig())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		until++
		s.eng.Run(until, 0) // one simulated second ≈ 115 requests
	}
}

func BenchmarkCollect(b *testing.B) {
	s, _ := steadySim(b, allocConfig())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if res := s.collect(); res.Throughput <= 0 {
			b.Fatal("empty collection")
		}
	}
}

func BenchmarkTransientCurve(b *testing.B) {
	cfg := Config{
		Server:   workload.AppServF(),
		DB:       workload.CaseStudyDB(),
		Demands:  workload.CaseStudyDemands(),
		Load:     workload.TypicalWorkload(800),
		Seed:     7,
		Duration: 60,
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := TransientCurve(cfg, 10); err != nil {
			b.Fatal(err)
		}
	}
}
