package trade

import (
	"math"
	"testing"

	"perfpred/internal/obs"
	"perfpred/internal/sim"
	"perfpred/internal/workload"
)

func shardedConfig(pools, shards int, remote float64) Config {
	return Config{
		Server:         workload.AppServF(),
		DB:             workload.CaseStudyDB(),
		Demands:        workload.CaseStudyDemands(),
		Load:           workload.MixedWorkload(200, 0.25),
		Seed:           31,
		WarmUp:         10,
		Duration:       120,
		MaxRTSamples:   64,
		Pools:          pools,
		Shards:         shards,
		RemoteFraction: remote,
	}
}

func sameResult(t *testing.T, label string, a, b *Result) {
	t.Helper()
	if a.EventsFired != b.EventsFired {
		t.Errorf("%s: EventsFired %d != %d", label, a.EventsFired, b.EventsFired)
	}
	if a.MeanRT != b.MeanRT || a.Throughput != b.Throughput {
		t.Errorf("%s: meanRT/X %v/%v != %v/%v", label, a.MeanRT, a.Throughput, b.MeanRT, b.Throughput)
	}
	if a.AppUtilization != b.AppUtilization || a.DBUtilization != b.DBUtilization {
		t.Errorf("%s: utilisation %v/%v != %v/%v", label, a.AppUtilization, a.DBUtilization, b.AppUtilization, b.DBUtilization)
	}
	if len(a.PerClass) != len(b.PerClass) {
		t.Fatalf("%s: class count %d != %d", label, len(a.PerClass), len(b.PerClass))
	}
	for name, ca := range a.PerClass {
		cb := b.PerClass[name]
		if ca.Completed != cb.Completed || ca.MeanRT != cb.MeanRT || ca.RTStdDev != cb.RTStdDev {
			t.Errorf("%s: class %s (%d, %v, %v) != (%d, %v, %v)", label, name,
				ca.Completed, ca.MeanRT, ca.RTStdDev, cb.Completed, cb.MeanRT, cb.RTStdDev)
		}
		if len(ca.Samples) != len(cb.Samples) {
			t.Errorf("%s: class %s sample count %d != %d", label, name, len(ca.Samples), len(cb.Samples))
			continue
		}
		for i := range ca.Samples {
			if ca.Samples[i] != cb.Samples[i] {
				t.Errorf("%s: class %s sample %d: %v != %v", label, name, i, ca.Samples[i], cb.Samples[i])
				break
			}
		}
	}
	if len(a.PerServer) != len(b.PerServer) {
		t.Fatalf("%s: server count %d != %d", label, len(a.PerServer), len(b.PerServer))
	}
	for i := range a.PerServer {
		sa, sb := a.PerServer[i], b.PerServer[i]
		if sa != sb {
			t.Errorf("%s: server %d %+v != %+v", label, i, sa, sb)
		}
	}
}

// Satellite: the same seeded fleet scenario must produce IDENTICAL
// aggregate statistics at any shard count — pools own their state,
// streams are keyed by pool index, and cross-pool messages carry
// mapping-invariant ordering keys, so 1, 2 and 4 shards replay the
// same trajectory.
func TestShardedDeterministicAcrossShardCounts(t *testing.T) {
	for _, remote := range []float64{0, 0.25} {
		cfgRef := shardedConfig(4, 1, remote)
		ref, err := Run(cfgRef)
		if err != nil {
			t.Fatal(err)
		}
		if ref.Throughput <= 0 {
			t.Fatal("reference run measured nothing")
		}
		for _, shards := range []int{2, 4} {
			cfg := shardedConfig(4, shards, remote)
			got, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			sameResult(t, formatLabel(remote, shards), ref, got)
		}
	}
}

func formatLabel(remote float64, shards int) string {
	if remote > 0 {
		return "remote/" + string(rune('0'+shards)) + "shards"
	}
	return "isolated/" + string(rune('0'+shards)) + "shards"
}

// Re-running the identical sharded config must be exactly reproducible
// (the coordinator introduces no scheduling nondeterminism).
func TestShardedRunReproducible(t *testing.T) {
	cfg := shardedConfig(3, 3, 0.2)
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, "rerun", a, b)
}

// With RemoteFraction 0 every pool is an independent replica: pool i's
// trajectory must be EXACTLY the legacy single-engine run seeded with
// SplitSeed(seed, i) — the fleet is the sum of legacy runs. This pins
// the sharded path to the pre-existing engine's behaviour.
func TestShardedPoolsMatchLegacyRuns(t *testing.T) {
	cfg := shardedConfig(2, 2, 0)
	fleet, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var legacyFired uint64
	legacyCompleted := map[string]int{}
	legacyApp := map[string]float64{}
	for i := 0; i < 2; i++ {
		lcfg := cfg
		lcfg.Pools, lcfg.Shards = 0, 0
		lcfg.Seed = sim.SplitSeed(cfg.Seed, uint64(i))
		lr, err := Run(lcfg)
		if err != nil {
			t.Fatal(err)
		}
		legacyFired += lr.EventsFired
		for name, c := range lr.PerClass {
			legacyCompleted[name] += c.Completed
		}
		legacyApp[lr.PerServer[0].Name] += lr.PerServer[0].Utilization
	}
	if fleet.EventsFired != legacyFired {
		t.Errorf("fleet fired %d events, legacy pair fired %d", fleet.EventsFired, legacyFired)
	}
	for name, want := range legacyCompleted {
		if got := fleet.PerClass[name].Completed; got != want {
			t.Errorf("class %s completed %d, legacy pair %d", name, got, want)
		}
	}
	var fleetApp float64
	for _, srv := range fleet.PerServer {
		fleetApp += srv.Utilization
	}
	var legacySum float64
	for _, u := range legacyApp {
		legacySum += u
	}
	if math.Abs(fleetApp-legacySum) > 1e-12 {
		t.Errorf("fleet app utilisation sum %v, legacy pair %v", fleetApp, legacySum)
	}
}

// Remote requests must actually flow and be measured: with a high
// remote fraction the per-class completions stay near the isolated
// fleet's (every forwarded request still completes), and response
// times grow by at least the two network hops on the remote share.
func TestShardedRemoteRequestsServed(t *testing.T) {
	base, err := Run(shardedConfig(2, 2, 0))
	if err != nil {
		t.Fatal(err)
	}
	remote, err := Run(shardedConfig(2, 2, 0.5))
	if err != nil {
		t.Fatal(err)
	}
	if remote.Throughput <= 0.5*base.Throughput {
		t.Fatalf("remote fleet throughput %v collapsed vs isolated %v", remote.Throughput, base.Throughput)
	}
	// Half the requests pay 2 × DefaultShardLatency of pure network
	// time; the fleet mean must reflect at least part of that.
	if remote.MeanRT < base.MeanRT {
		t.Fatalf("remote fleet meanRT %v below isolated %v despite added hops", remote.MeanRT, base.MeanRT)
	}
}

// Sharded config validation: the unsupported variants and malformed
// knobs must be rejected up front.
func TestShardedConfigValidation(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.DetailedOperations = true },
		func(c *Config) { c.StreamingPercentiles = true },
		func(c *Config) { c.RemoteFraction = 1.0 },
		func(c *Config) { c.RemoteFraction = -0.1 },
		func(c *Config) { c.ShardLatency = -1 },
		func(c *Config) { c.Pools = -1 },
		func(c *Config) { c.Pools, c.Shards = 1, 1; c.RemoteFraction = 0.5 }, // not sharded
		func(c *Config) { c.Pools = 0; c.Shards = 0; c.ShardLatency = 0.01 }, // not sharded
	}
	for i, mutate := range bad {
		cfg := shardedConfig(4, 2, 0.2)
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d: invalid sharded config passed validation", i)
		}
	}
	// RemoteFraction with a single effective pool cannot forward
	// anywhere.
	cfg := shardedConfig(0, 1, 0.5)
	cfg.Pools = 1
	cfg.Shards = 2 // clamped to pools; still one replica
	if err := cfg.Validate(); err == nil {
		t.Error("RemoteFraction with one pool passed validation")
	}
	if err := shardedConfig(4, 2, 0.2).Validate(); err != nil {
		t.Errorf("valid sharded config rejected: %v", err)
	}
}

// Adaptive and transient studies stay on the legacy engine.
func TestShardedGuards(t *testing.T) {
	cfg := shardedConfig(2, 2, 0)
	if _, err := RunAdaptive(cfg, RunControl{TargetRelErr: 0.05}); err == nil {
		t.Error("RunAdaptive accepted a sharded config")
	}
	if _, err := TransientCurve(cfg, 10); err == nil {
		t.Error("TransientCurve accepted a sharded config")
	}
}

// steadyShardedSim warms a fleet past its transient and fills every
// pool (request records, cross-pool records, message buffers,
// reservoirs) so subsequent windows run the pure steady-state path.
func steadyShardedSim(t testing.TB, cfg Config) (*shardedSim, float64) {
	t.Helper()
	ss, err := newShardedSim(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(ss.coord.Close)
	ss.coord.Run(cfg.WarmUp)
	for _, p := range ss.pools {
		p.resetStats()
		p.measuring = true
	}
	until := cfg.WarmUp + 60
	ss.coord.Run(until)
	return ss, until
}

// Acceptance criterion: the sharded hot loop — window execution,
// cross-pool messaging, barrier exchange — allocates nothing per
// advance on every shard, with metrics enabled.
func TestShardedSteadyStateZeroAllocWithMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	EnableMetrics(reg)
	sim.EnableMetrics(reg)
	defer EnableMetrics(nil)
	defer sim.EnableMetrics(nil)

	cfg := shardedConfig(4, 2, 0.25)
	cfg.Duration = 100000 // never reached; advanced manually
	ss, until := steadyShardedSim(t, cfg)
	allocs := testing.AllocsPerRun(50, func() {
		until += 2
		ss.coord.Run(until)
	})
	if allocs != 0 {
		t.Fatalf("sharded steady-state loop allocates %v objects per 2 simulated seconds, want 0", allocs)
	}
	if res := ss.collect(); res.Throughput <= 0 {
		t.Fatal("empty collection")
	}
	snap := reg.Snapshot()
	if snap.Counters["trade_requests_completed"] == 0 {
		t.Fatal("metrics enabled but trade_requests_completed stayed zero")
	}
	if snap.MaxGauges["sim_heap_depth_high_water"] == 0 {
		t.Fatal("per-shard heap high-water never published")
	}
}
