package trade

import (
	"errors"

	"perfpred/internal/sim"
	"perfpred/internal/stats"
)

// TransientPoint is one time bucket of a cold-start measurement: the
// mean response time of responses completed in (Time−bucket, Time].
type TransientPoint struct {
	// Time is the bucket's right edge in simulated seconds from cold
	// start.
	Time float64
	// MeanRT is the bucket's mean response time (0 if no completions).
	MeanRT float64
	// Completed counts the bucket's responses.
	Completed int
}

// TransientCurve runs the configured workload from a cold start with
// NO warm-up discard and reports the response-time trajectory in
// fixed-width buckets. The historical method records this
// stabilisation behaviour as a variable (§8.2) — something the
// steady-state-only layered method cannot represent. The config's
// WarmUp field is ignored; Duration bounds the observation window.
func TransientCurve(cfg Config, bucket float64) ([]TransientPoint, error) {
	if bucket <= 0 {
		return nil, errors.New("trade: bucket must be positive")
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	eng := sim.NewEngine()
	root := sim.NewStream(cfg.Seed)
	// A reduced single-tier simulator is enough for the transient
	// study; reuse the full simulator with measurement on from t=0 and
	// intercept completions into buckets via the class accumulators.
	buckets := int(cfg.Duration/bucket) + 1
	points := make([]TransientPoint, buckets)
	accs := make([]*stats.Accumulator, buckets)
	for i := range accs {
		accs[i] = &stats.Accumulator{}
		points[i].Time = float64(i+1) * bucket
	}

	s := &simulator{
		cfg:     cfg,
		eng:     eng,
		dbSlots: sim.NewSemaphore(eng, cfg.DB.Name+"/agents", cfg.DB.MPL, sim.PerSourceFIFO),
		dbCPU:   sim.NewStation(eng, cfg.DB.Name+"/cpu", cfg.DB.Speed, 0, sim.GlobalFIFO),
		think:   root.Derive(1),
		serve:   root.Derive(2),
		choose:  root.Derive(3),
		route:   root.Derive(5),
		acc:     make(map[string]*classAcc),
	}
	for _, arch := range cfg.tier() {
		s.apps = append(s.apps, &appServer{
			arch:  arch,
			slots: sim.NewSemaphore(eng, arch.Name+"/threads", arch.MPL, sim.GlobalFIFO),
			cpu:   sim.NewStation(eng, arch.Name+"/cpu", arch.Speed, 0, sim.GlobalFIFO),
		})
	}
	record := func(rt float64) {
		idx := int(eng.Now() / bucket)
		if idx >= 0 && idx < buckets {
			accs[idx].Add(rt)
		}
	}
	id := 0
	for _, pop := range cfg.Load {
		if pop.Open() {
			continue // transient study covers the closed populations
		}
		for i := 0; i < pop.Clients; i++ {
			c := &client{id: id, class: pop.Class, home: -1}
			if cfg.Routing == RouteSticky || cfg.Routing == "" {
				c.home = s.assignSticky()
			}
			id++
			class := pop.Class
			var issue func()
			issue = func() {
				demand := cfg.Demands[s.pickRequestType(class)]
				arrival := eng.Now()
				srv := s.pickServer(c)
				app := s.apps[srv]
				app.slots.Acquire(0, func() {
					s.processRequest(c, srv, demand, func() {
						app.slots.Release()
						record(eng.Now() - arrival)
						eng.Schedule(s.think.Exp(class.ThinkTimeMean), issue)
					})
				})
			}
			eng.Schedule(s.think.Exp(class.ThinkTimeMean), issue)
		}
	}
	eng.Run(cfg.Duration, 0)
	for i := range points {
		points[i].MeanRT = accs[i].Mean()
		points[i].Completed = accs[i].Count()
	}
	return points, nil
}
