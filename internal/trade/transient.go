package trade

import (
	"errors"

	"perfpred/internal/stats"
)

// TransientPoint is one time bucket of a cold-start measurement: the
// mean response time of responses completed in (Time−bucket, Time].
type TransientPoint struct {
	// Time is the bucket's right edge in simulated seconds from cold
	// start.
	Time float64
	// MeanRT is the bucket's mean response time (0 if no completions).
	MeanRT float64
	// Completed counts the bucket's responses.
	Completed int
}

// TransientCurve runs the configured workload from a cold start with
// NO warm-up discard and reports the response-time trajectory in
// fixed-width buckets. The historical method records this
// stabilisation behaviour as a variable (§8.2) — something the
// steady-state-only layered method cannot represent. The config's
// WarmUp field is ignored; Duration bounds the observation window.
// Open populations are left idle — the transient study covers the
// closed populations — but the full Config is otherwise honoured,
// including session caches and critical sections.
func TransientCurve(cfg Config, bucket float64) ([]TransientPoint, error) {
	if bucket <= 0 {
		return nil, errors.New("trade: bucket must be positive")
	}
	if cfg.sharded() {
		return nil, errors.New("trade: transient curves are not supported on sharded configurations")
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	buckets := int(cfg.Duration/bucket) + 1
	points := make([]TransientPoint, buckets)
	accs := make([]stats.Accumulator, buckets)
	for i := range points {
		points[i].Time = float64(i+1) * bucket
	}
	s, err := newSimulator(cfg, simOptions{
		skipOpen: true,
		intercept: func(now, rt float64) {
			if idx := int(now / bucket); idx >= 0 && idx < buckets {
				accs[idx].Add(rt)
			}
		},
	})
	if err != nil {
		return nil, err
	}
	s.eng.Run(cfg.Duration, 0)
	for i := range points {
		points[i].MeanRT = accs[i].Mean()
		points[i].Completed = accs[i].Count()
	}
	return points, nil
}
