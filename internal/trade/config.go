// Package trade is the discrete-event reconstruction of the paper's
// measurement testbed: the IBM Trade benchmark deployed on WebSphere
// application servers with a DB2 database server, driven by closed
// JMeter-style client populations. It produces the "measured"
// response times, throughputs and utilisations against which the
// historical, layered queuing and hybrid predictions are scored.
//
// The queuing structure follows the paper's system model (§2): each
// application server has a FIFO waiting queue and processes up to 50
// requests at the same time via time-sharing; the database server has
// one FIFO queue per application server and time-shares up to 20
// requests. A request holds its application-server slot across its
// synchronous database calls (the servlet-thread semantics of the
// WebSphere platform). The §7.2 caching extension is modelled with a
// genuine LRU over per-client session data, so cache behaviour emerges
// from the simulation rather than from a formula.
package trade

import (
	"errors"
	"fmt"

	"perfpred/internal/scenario"
	"perfpred/internal/workload"
)

// CacheConfig enables the §7.2 indirect-persistence variant, in which
// the application server's main memory caches per-client session data:
// a request that misses the cache pays an extra database call to read
// its session back.
type CacheConfig struct {
	// SizeBytes is the memory available for session data.
	SizeBytes int64
	// SessionBytesMean is the mean per-client session size;
	// per-client sizes are sampled exponentially around it, giving the
	// variable session-size distribution the paper describes.
	SessionBytesMean float64
	// MissExtraDBCalls is the number of additional database calls a
	// cache miss costs (1 in the paper: one session read).
	MissExtraDBCalls float64
	// MissDBTimePerCall overrides the request type's per-call database
	// time for the session read; 0 means use the request type's value.
	MissDBTimePerCall float64
}

// Validate reports the first structural problem with the cache
// configuration.
func (c CacheConfig) Validate() error {
	switch {
	case c.SizeBytes <= 0:
		return errors.New("trade: cache size must be positive")
	case c.SessionBytesMean <= 0:
		return errors.New("trade: session size mean must be positive")
	case c.MissExtraDBCalls < 0:
		return errors.New("trade: miss extra db calls must be non-negative")
	case c.MissDBTimePerCall < 0:
		return errors.New("trade: miss db time must be non-negative")
	}
	return nil
}

// RoutingPolicy selects how the workload manager routes requests
// across the application-server tier (§2).
type RoutingPolicy string

const (
	// RouteSticky assigns each client a home server at start-up,
	// spreading clients in proportion to server speed — the division a
	// workload manager makes from the speed benchmarks. This is the
	// default and the single-server behaviour.
	RouteSticky RoutingPolicy = "sticky"
	// RouteRoundRobin routes each request to the next server in turn,
	// ignoring speed differences.
	RouteRoundRobin RoutingPolicy = "roundrobin"
	// RouteLeastBusy routes each request to the server with the
	// fewest held-plus-waiting threads (join-the-shortest-queue).
	RouteLeastBusy RoutingPolicy = "leastbusy"
)

// CriticalSectionConfig describes the §8.1 implicit bottleneck.
type CriticalSectionConfig struct {
	// MeanTime is the mean (exponential) CPU time spent holding the
	// lock, seconds at reference speed.
	MeanTime float64
	// Fraction is the probability a request enters the section.
	Fraction float64
}

// Validate reports the first structural problem.
func (c CriticalSectionConfig) Validate() error {
	if c.MeanTime <= 0 {
		return errors.New("trade: critical section needs positive mean time")
	}
	if c.Fraction <= 0 || c.Fraction > 1 {
		return fmt.Errorf("trade: critical-section fraction %v outside (0,1]", c.Fraction)
	}
	return nil
}

// Config describes one measurement run: an application-server tier
// (one server by default) plus the shared database server under a
// closed multi-class workload, matching how the paper benchmarks each
// architecture and models each hosted application.
type Config struct {
	// Server is the single application server; ignored when Servers is
	// set.
	Server workload.ServerArch
	// Servers, when non-empty, defines a multi-server application tier
	// (the paper's "tier of application servers accessing a single
	// database server", §2). Each server keeps its own FIFO queue at
	// the database.
	Servers []workload.ServerArch
	// Routing selects the workload-manager policy for multi-server
	// tiers; empty means RouteSticky.
	Routing RoutingPolicy
	DB      workload.DBServer
	Demands map[workload.RequestType]workload.Demand
	Load    workload.Workload

	// Scenario, when non-nil, replaces Load with a compiled declarative
	// scenario: closed cohorts become client populations with their
	// declared think-time distributions, and open cohorts (Poisson,
	// MMPP, trace replay, with optional temporal patterns) drive
	// spec-defined arrival generators through the pooled request
	// lifecycle. Each cohort's generator runs on sim.Split streams keyed
	// by its cohort index off the pool root, so spec-driven runs are
	// bit-identical at any shard count. Mutually exclusive with Load;
	// incompatible with DetailedOperations and the session cache (open
	// scenario traffic carries no per-client session identity).
	Scenario *scenario.Compiled

	// Seed fixes all random streams; equal seeds give identical runs.
	Seed int64
	// WarmUp is the simulated time (seconds) discarded before
	// measurement starts (the paper uses a 1-minute warm-up).
	WarmUp float64
	// Duration is the simulated measurement window (seconds).
	Duration float64
	// MaxRTSamples bounds the per-class response-time sample buffers
	// used for percentile estimation (reservoir sampling beyond it).
	// 0 means DefaultMaxRTSamples.
	MaxRTSamples int

	// Cache, when non-nil, enables the §7.2 session-cache variant.
	Cache *CacheConfig

	// CriticalSection, when non-nil, adds an §8.1-style implicit
	// bottleneck: a fraction of requests must hold a per-server global
	// lock while executing a code section, creating a serialisation
	// queue no explicit model declares. The historical method absorbs
	// it from measurements; the layered method needs the queue
	// profiled and added to its model.
	CriticalSection *CriticalSectionConfig

	// DetailedOperations switches single-type classes from the coarse
	// request-type model to the §3.1 operation level: browse clients
	// randomly select among Trade's read operations and buy clients
	// run register/login → 10 buys → logoff sessions with a growing
	// portfolio. Aggregate demands match the coarse model, and the
	// result gains per-operation measurements.
	DetailedOperations bool

	// StreamingPercentiles replaces the per-class response-time sample
	// buffers with streaming P² quantile estimators: O(1) memory per
	// class regardless of run length, at the cost of estimated (rather
	// than sampled) percentiles. Results then carry Quantiles instead
	// of Samples. The default keeps the reservoir buffers, which the
	// calibration helpers and golden outputs depend on.
	StreamingPercentiles bool
	// StreamQuantiles optionally sets the probabilities the streaming
	// estimators track (each in (0,1)); empty selects
	// stats.DefaultStreamQuantiles. Only valid with
	// StreamingPercentiles.
	StreamQuantiles []float64

	// CompatTypeChoice selects the legacy CDF-inversion draw-to-type
	// mapping for multi-type class mixes instead of the precomputed
	// alias table. Both sample the identical distribution with one
	// uniform draw per pick; only the per-seed type sequence differs.
	// Single-type mixes never draw, under either setting.
	CompatTypeChoice bool

	// Pools, when > 1, switches the run to the sharded fleet model: the
	// configured network (application tier + database) is replicated
	// Pools times, each replica carrying the configured Load with its
	// own random streams split from Seed by stable pool index
	// (sim.SplitSeed), so the fleet's trajectory is identical at any
	// shard count. 0 or 1 with Shards ≤ 1 selects the legacy
	// single-engine path, which is bit-identical to previous releases.
	// Pools defaults to Shards when unset in a sharded run.
	Pools int
	// Shards is the number of engine shards the pools are partitioned
	// across (pool i runs on shard i mod Shards); each shard advances
	// on its own calendar-queue engine, synchronised in conservative
	// time windows. 0 or 1 runs all pools on one engine. Shards above
	// Pools are clamped to Pools.
	Shards int
	// RemoteFraction is the probability a closed client's request is
	// forwarded to a uniformly chosen remote pool instead of its own —
	// the cross-shard traffic of a fleet with shared-nothing replicas
	// and occasional remote service. 0 (the default) makes pools fully
	// independent. Requires a sharded run with at least two pools; must
	// be < 1.
	RemoteFraction float64
	// ShardLatency is the one-way network latency of a cross-pool
	// request hop, seconds; it doubles as the conservative lookahead, so
	// it must be positive when RemoteFraction is. 0 selects
	// DefaultShardLatency. A remote response time includes two hops.
	ShardLatency float64

	// PoolArchs, when non-empty, makes the fleet heterogeneous: pool i
	// runs architecture PoolArchs[i mod len(PoolArchs)] instead of
	// Server, so one sharded run can mix AppServS/F/VF pools the way the
	// §9 server room does. Requires a sharded run; incompatible with a
	// multi-server tier (Servers).
	PoolArchs []workload.ServerArch

	// Router, when non-nil, replaces the static pool assignment with
	// per-request routing: every closed client asks the router which
	// pool serves each request (internal/fleet provides scorer-backed
	// implementations). Requires a sharded run with at least two pools;
	// mutually exclusive with RemoteFraction, whose random sibling draw
	// it supersedes. The hop latency (and conservative lookahead) is
	// ShardLatency even when all decisions happen to stay local.
	Router PoolRouter

	// BarrierHook, when non-nil, is installed as the coordinator's
	// window-barrier callback (sim.Coordinator.SetBarrierHook): it runs
	// between windows, when every shard is quiescent, at the identical
	// sequence of simulated times for any shard count. The fleet layer
	// uses it to publish routing snapshots and replan in-loop. Requires
	// a sharded run; the barrier cadence is the resolved lookahead.
	BarrierHook func(now float64)
}

// DefaultMaxRTSamples bounds percentile sample buffers by default.
const DefaultMaxRTSamples = 200000

// DefaultShardLatency is the cross-pool hop latency (and conservative
// lookahead) used when a sharded run enables RemoteFraction without
// setting ShardLatency: 5 ms, a LAN round trip's worth of headroom
// that keeps synchronisation windows long enough to batch usefully.
const DefaultShardLatency = 0.005

// sharded reports whether the configuration selects the fleet model
// (shard coordinator + pool replicas) rather than the legacy
// single-engine simulator.
func (c Config) sharded() bool { return c.Pools > 1 || c.Shards > 1 }

// effectivePools resolves the replica count of a sharded run: Pools,
// defaulting to Shards when only the shard count was given.
func (c Config) effectivePools() int {
	if c.Pools > 0 {
		return c.Pools
	}
	return c.Shards
}

// effectiveShards resolves the engine count: at least 1, never more
// than the pool count (surplus shards would idle).
func (c Config) effectiveShards() int {
	s := c.Shards
	if s < 1 {
		s = 1
	}
	if p := c.effectivePools(); s > p {
		s = p
	}
	return s
}

// tier returns the application-server tier: Servers when set,
// otherwise the single Server.
func (c Config) tier() []workload.ServerArch {
	if len(c.Servers) > 0 {
		return c.Servers
	}
	return []workload.ServerArch{c.Server}
}

// effectiveLoad resolves the workload the run carries: the scenario's
// derived workload when a Scenario is set, the static Load otherwise.
func (c Config) effectiveLoad() workload.Workload {
	if c.Scenario != nil {
		return c.Scenario.Workload()
	}
	return c.Load
}

// Validate reports the first structural problem with the run
// configuration.
func (c Config) Validate() error {
	seen := make(map[string]bool)
	for _, s := range c.tier() {
		if err := s.Validate(); err != nil {
			return err
		}
		if seen[s.Name] {
			return fmt.Errorf("trade: duplicate server name %q in tier (names must be unique)", s.Name)
		}
		seen[s.Name] = true
	}
	switch c.Routing {
	case "", RouteSticky, RouteRoundRobin, RouteLeastBusy:
	default:
		return fmt.Errorf("trade: unknown routing policy %q", c.Routing)
	}
	if err := c.DB.Validate(); err != nil {
		return err
	}
	if len(c.Demands) == 0 {
		return errors.New("trade: no request-type demands configured")
	}
	for rt, d := range c.Demands {
		if err := d.Validate(); err != nil {
			return fmt.Errorf("trade: demand for %q: %w", rt, err)
		}
	}
	if c.Scenario != nil {
		if len(c.Load) > 0 {
			return errors.New("trade: Scenario and Load are mutually exclusive (the scenario defines the workload)")
		}
		if c.DetailedOperations {
			return errors.New("trade: DetailedOperations is not supported with a Scenario")
		}
		if c.Cache != nil {
			return errors.New("trade: the session cache is not supported with a Scenario (open scenario traffic has no per-client sessions)")
		}
	}
	load := c.effectiveLoad()
	if err := load.Validate(); err != nil {
		return err
	}
	hasOpen := false
	for _, p := range load {
		if p.Open() {
			hasOpen = true
		}
	}
	if load.TotalClients() == 0 && !hasOpen {
		return errors.New("trade: workload has no clients or open streams")
	}
	for _, p := range load {
		for rt := range p.Class.Mix {
			if _, ok := c.Demands[rt]; !ok {
				return fmt.Errorf("trade: class %q uses request type %q with no demand", p.Class.Name, rt)
			}
		}
	}
	if c.WarmUp < 0 || c.Duration <= 0 {
		return errors.New("trade: need non-negative warm-up and positive duration")
	}
	if c.Cache != nil {
		if err := c.Cache.Validate(); err != nil {
			return err
		}
	}
	if c.CriticalSection != nil {
		if err := c.CriticalSection.Validate(); err != nil {
			return err
		}
	}
	if len(c.StreamQuantiles) > 0 && !c.StreamingPercentiles {
		return errors.New("trade: StreamQuantiles requires StreamingPercentiles")
	}
	for _, q := range c.StreamQuantiles {
		if q <= 0 || q >= 1 {
			return fmt.Errorf("trade: stream quantile %v outside (0,1)", q)
		}
	}
	if c.Pools < 0 || c.Shards < 0 {
		return errors.New("trade: pools and shards must be non-negative")
	}
	if c.RemoteFraction < 0 || c.RemoteFraction >= 1 {
		return fmt.Errorf("trade: remote fraction %v outside [0,1)", c.RemoteFraction)
	}
	if c.ShardLatency < 0 {
		return errors.New("trade: shard latency must be non-negative")
	}
	if !c.sharded() {
		if c.RemoteFraction != 0 || c.ShardLatency != 0 {
			return errors.New("trade: RemoteFraction/ShardLatency require a sharded run (Pools or Shards > 1)")
		}
		if len(c.PoolArchs) > 0 || c.Router != nil || c.BarrierHook != nil {
			return errors.New("trade: PoolArchs/Router/BarrierHook require a sharded run (Pools or Shards > 1)")
		}
		return nil
	}
	// Sharded fleet restrictions: the per-operation and streaming-P²
	// accumulators have no cross-pool merge, so those variants stay on
	// the legacy engine.
	if c.DetailedOperations {
		return errors.New("trade: DetailedOperations is not supported in sharded runs")
	}
	if c.StreamingPercentiles {
		return errors.New("trade: StreamingPercentiles is not supported in sharded runs")
	}
	if c.RemoteFraction > 0 && c.effectivePools() < 2 {
		return errors.New("trade: RemoteFraction needs at least two pools")
	}
	if len(c.PoolArchs) > 0 {
		if len(c.Servers) > 0 {
			return errors.New("trade: PoolArchs is incompatible with a multi-server tier (Servers)")
		}
		for _, a := range c.PoolArchs {
			if err := a.Validate(); err != nil {
				return err
			}
		}
	}
	if c.Router != nil {
		if c.effectivePools() < 2 {
			return errors.New("trade: Router needs at least two pools")
		}
		if c.RemoteFraction > 0 {
			return errors.New("trade: Router and RemoteFraction are mutually exclusive")
		}
	}
	return nil
}
