package trade

import (
	"perfpred/internal/sim"
	"perfpred/internal/workload"
)

// typeSampler resolves a service class's request-type mix once per run:
// the mix's types in deterministic order, their demands pre-looked-up
// from the demand table, and — for multi-type mixes — a Walker/Vose
// alias table so each pick costs one uniform draw and no sort. The old
// per-request path rebuilt the sorted type list and scanned a CDF on
// every pick; this sampler does that work exactly once per Config.
//
// Draw discipline: a single-type mix consumes no draws (matching the
// legacy fast path); a multi-type mix consumes exactly one uniform
// draw per pick in both modes. Compat mode reproduces the legacy
// Stream.Choose CDF-inversion draw-to-type mapping bit for bit; the
// default alias mapping samples the identical distribution but maps
// draws to types differently, so multi-type per-seed sequences change
// (Config.CompatTypeChoice restores the old ones).
type typeSampler struct {
	types   []workload.RequestType
	demands []workload.Demand
	weights []float64
	alias   *sim.AliasTable // nil for single-type mixes and compat mode
}

// newTypeSampler builds a sampler for one class mix against a demand
// table. The caller has validated that every type in the mix has a
// demand entry.
func newTypeSampler(mix workload.Mix, demands map[workload.RequestType]workload.Demand, compat bool) *typeSampler {
	t := &typeSampler{
		types:   orderedTypes(mix),
		demands: make([]workload.Demand, 0, len(mix)),
		weights: make([]float64, 0, len(mix)),
	}
	for _, rt := range t.types {
		t.demands = append(t.demands, demands[rt])
		t.weights = append(t.weights, mix[rt])
	}
	if len(t.types) > 1 && !compat {
		t.alias = sim.NewAliasTable(t.weights)
	}
	return t
}

// pick returns the index of the next request type, consuming one
// uniform draw from choose for multi-type mixes and none otherwise.
func (t *typeSampler) pick(choose *sim.Stream) int {
	if len(t.types) == 1 {
		return 0
	}
	if t.alias != nil {
		return t.alias.Pick(choose)
	}
	return choose.Choose(t.weights)
}

// sample returns the resolved demand of the next request type.
func (t *typeSampler) sample(choose *sim.Stream) workload.Demand {
	return t.demands[t.pick(choose)]
}

// orderedTypes returns map keys in a fixed order so runs are
// deterministic for a given seed.
func orderedTypes(m workload.Mix) []workload.RequestType {
	out := make([]workload.RequestType, 0, len(m))
	for rt := range m {
		out = append(out, rt)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}
