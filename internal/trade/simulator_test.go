package trade

import (
	"math"
	"testing"

	"perfpred/internal/workload"
)

func measureOpts() MeasureOptions {
	return MeasureOptions{Seed: 1, WarmUp: 40, Duration: 160}
}

func TestConfigValidate(t *testing.T) {
	good := baseConfig(workload.AppServF(), workload.TypicalWorkload(100), measureOpts())
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := good
	bad.Load = workload.TypicalWorkload(0)
	if err := bad.Validate(); err == nil {
		t.Fatal("zero clients should fail")
	}
	bad = good
	bad.Duration = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("zero duration should fail")
	}
	bad = good
	bad.Demands = map[workload.RequestType]workload.Demand{}
	if err := bad.Validate(); err == nil {
		t.Fatal("empty demands should fail")
	}
	bad = good
	bad.Demands = map[workload.RequestType]workload.Demand{
		workload.Buy: workload.CaseStudyDemands()[workload.Buy],
	}
	if err := bad.Validate(); err == nil {
		t.Fatal("missing demand for used request type should fail")
	}
	bad = good
	bad.Cache = &CacheConfig{SizeBytes: 0, SessionBytesMean: 1}
	if err := bad.Validate(); err == nil {
		t.Fatal("invalid cache config should fail")
	}
}

func TestRunDeterministicForSeed(t *testing.T) {
	cfg := baseConfig(workload.AppServF(), workload.TypicalWorkload(200), MeasureOptions{Seed: 7, WarmUp: 20, Duration: 60})
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.MeanRT != b.MeanRT || a.Throughput != b.Throughput {
		t.Fatalf("same seed differs: %v vs %v", a, b)
	}
	cfg.Seed = 8
	c, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.MeanRT == c.MeanRT {
		t.Fatal("different seeds produced identical mean RT")
	}
}

func TestLightLoadResponseTimeNearDemand(t *testing.T) {
	// A nearly idle server should respond in roughly the raw demand:
	// app time + db calls * db time, with negligible queuing.
	res, err := Measure(workload.AppServF(), workload.TypicalWorkload(5), measureOpts())
	if err != nil {
		t.Fatal(err)
	}
	d := workload.CaseStudyDemands()[workload.Browse]
	want := d.AppServerTime + d.TotalDBTime()
	if res.MeanRT < 0.5*want || res.MeanRT > 2.5*want {
		t.Fatalf("light-load mean RT %v, want ≈%v", res.MeanRT, want)
	}
	if res.AppUtilization > 0.05 {
		t.Fatalf("light-load app utilization %v too high", res.AppUtilization)
	}
}

func TestClosedLoopThroughputBelowSaturation(t *testing.T) {
	// Below saturation, X ≈ N/(Z+R): the paper's linear
	// clients-throughput relationship with gradient m ≈ 1/(Z+R) ≈ 0.14.
	const n = 500
	res, err := Measure(workload.AppServF(), workload.TypicalWorkload(n), measureOpts())
	if err != nil {
		t.Fatal(err)
	}
	expected := float64(n) / (workload.ThinkTimeMean + res.MeanRT)
	if math.Abs(res.Throughput-expected)/expected > 0.05 {
		t.Fatalf("throughput %v violates Little's law expectation %v", res.Throughput, expected)
	}
	m := res.Throughput / float64(n)
	if m < 0.12 || m > 0.15 {
		t.Fatalf("gradient m = %v, want ≈0.14", m)
	}
}

func TestMaxThroughputMatchesBenchmarks(t *testing.T) {
	// The simulator must reproduce the paper's benchmarked max
	// throughputs: 86, 186 and 320 req/s (§3.2) within a few percent.
	for _, tc := range []struct {
		server workload.ServerArch
		want   float64
	}{
		{workload.AppServS(), workload.MaxThroughputS},
		{workload.AppServF(), workload.MaxThroughputF},
		{workload.AppServVF(), workload.MaxThroughputVF},
	} {
		got, err := MaxThroughput(tc.server, 0, measureOpts())
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-tc.want)/tc.want > 0.04 {
			t.Fatalf("%s max throughput = %v, want ≈%v", tc.server.Name, got, tc.want)
		}
	}
}

func TestSaturatedResponseTimeLinear(t *testing.T) {
	// Past saturation, RT ≈ N/Xmax − Z grows linearly in N — the
	// historical method's upper equation (2).
	opt := measureOpts()
	n1, n2 := 1800, 2400
	r1, err := Measure(workload.AppServF(), workload.TypicalWorkload(n1), opt)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Measure(workload.AppServF(), workload.TypicalWorkload(n2), opt)
	if err != nil {
		t.Fatal(err)
	}
	want1 := float64(n1)/workload.MaxThroughputF - workload.ThinkTimeMean
	want2 := float64(n2)/workload.MaxThroughputF - workload.ThinkTimeMean
	if math.Abs(r1.MeanRT-want1)/want1 > 0.12 {
		t.Fatalf("saturated RT at %d clients = %v, want ≈%v", n1, r1.MeanRT, want1)
	}
	if math.Abs(r2.MeanRT-want2)/want2 > 0.12 {
		t.Fatalf("saturated RT at %d clients = %v, want ≈%v", n2, r2.MeanRT, want2)
	}
	if r2.MeanRT <= r1.MeanRT {
		t.Fatal("response time must grow with clients past saturation")
	}
	// Throughput is pinned at max.
	if math.Abs(r1.Throughput-workload.MaxThroughputF)/workload.MaxThroughputF > 0.05 {
		t.Fatalf("saturated throughput = %v, want ≈%v", r1.Throughput, workload.MaxThroughputF)
	}
}

func TestBuyWorkloadSlowerAndLowersMaxThroughput(t *testing.T) {
	// Buy requests are heavier (Table 2), so a buy mix lowers max
	// throughput — relationship 3's premise.
	typ, err := MaxThroughput(workload.AppServF(), 0, measureOpts())
	if err != nil {
		t.Fatal(err)
	}
	mixed, err := MaxThroughput(workload.AppServF(), 0.25, measureOpts())
	if err != nil {
		t.Fatal(err)
	}
	if mixed >= typ {
		t.Fatalf("25%% buy max throughput %v should be below typical %v", mixed, typ)
	}
	// The paper measured 189 → 158 req/s (a ~16% drop) on AppServF.
	drop := (typ - mixed) / typ
	if drop < 0.08 || drop > 0.30 {
		t.Fatalf("buy-mix throughput drop = %v, want roughly 10-25%%", drop)
	}
}

func TestPerClassResults(t *testing.T) {
	res, err := Measure(workload.AppServF(), workload.MixedWorkload(600, 0.25), measureOpts())
	if err != nil {
		t.Fatal(err)
	}
	buy, ok := res.PerClass["buy"]
	if !ok {
		t.Fatal("missing buy class result")
	}
	browse, ok := res.PerClass["browse"]
	if !ok {
		t.Fatal("missing browse class result")
	}
	// Buy requests are heavier, so their mean RT is higher.
	if buy.MeanRT <= browse.MeanRT {
		t.Fatalf("buy RT %v should exceed browse RT %v", buy.MeanRT, browse.MeanRT)
	}
	// Class shares roughly match the population split.
	frac := buy.Throughput / res.Throughput
	if math.Abs(frac-0.25) > 0.05 {
		t.Fatalf("buy request share = %v, want ≈0.25", frac)
	}
	if buy.Percentile(90) <= 0 || browse.Percentile(90) < browse.MeanRT*0.5 {
		t.Fatal("implausible percentiles")
	}
	if res.OverallPercentile(90) < res.MeanRT {
		t.Fatal("p90 should exceed mean for right-skewed response times")
	}
}

func TestDBUtilizationModest(t *testing.T) {
	// The app server is the case-study bottleneck; the DB must not be.
	res, err := Measure(workload.AppServF(), workload.TypicalWorkload(1600), measureOpts())
	if err != nil {
		t.Fatal(err)
	}
	if res.DBUtilization >= res.AppUtilization {
		t.Fatalf("db utilization %v should be below app %v", res.DBUtilization, res.AppUtilization)
	}
	if res.AppUtilization < 0.9 {
		t.Fatalf("app utilization %v should be near 1 at saturation", res.AppUtilization)
	}
}

func TestMeasureCurveShape(t *testing.T) {
	counts := []int{200, 800, 1600, 2200}
	points, err := MeasureCurve(workload.AppServF(), counts, 0, measureOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != len(counts) {
		t.Fatalf("got %d points", len(points))
	}
	// Mean RT is non-decreasing in load.
	for i := 1; i < len(points); i++ {
		if points[i].Res.MeanRT < points[i-1].Res.MeanRT*0.8 {
			t.Fatalf("RT curve not monotone: %v then %v", points[i-1].Res.MeanRT, points[i].Res.MeanRT)
		}
	}
	if _, err := MeasureCurve(workload.AppServF(), []int{0}, 0, measureOpts()); err == nil {
		t.Fatal("zero clients in curve should fail")
	}
}

func TestSaturationClients(t *testing.T) {
	got := SaturationClients(186, 7, 0.1)
	want := int(math.Ceil(186 * 7.1))
	if got != want {
		t.Fatalf("SaturationClients = %d, want %d", got, want)
	}
}
