package trade

import (
	"fmt"
	"math"
	"testing"

	"perfpred/internal/workload"
)

// tierOf builds a homogeneous tier of n copies of arch with unique
// names.
func tierOf(arch workload.ServerArch, n int) []workload.ServerArch {
	out := make([]workload.ServerArch, n)
	for i := range out {
		a := arch
		a.Name = fmt.Sprintf("%s-%d", arch.Name, i+1)
		out[i] = a
	}
	return out
}

func clusterConfig(servers []workload.ServerArch, clients int, routing RoutingPolicy) Config {
	return Config{
		Servers:  servers,
		Routing:  routing,
		DB:       workload.CaseStudyDB(),
		Demands:  workload.CaseStudyDemands(),
		Load:     workload.TypicalWorkload(clients),
		Seed:     13,
		WarmUp:   40,
		Duration: 140,
	}
}

func TestClusterValidation(t *testing.T) {
	dup := clusterConfig([]workload.ServerArch{workload.AppServF(), workload.AppServF()}, 100, RouteSticky)
	if err := dup.Validate(); err == nil {
		t.Fatal("duplicate server names should fail")
	}
	bad := clusterConfig(tierOf(workload.AppServF(), 2), 100, "random")
	if err := bad.Validate(); err == nil {
		t.Fatal("unknown routing policy should fail")
	}
	ok := clusterConfig(tierOf(workload.AppServF(), 2), 100, RouteLeastBusy)
	if err := ok.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestClusterThroughputScales(t *testing.T) {
	// Two AppServF servers saturate at ≈2×186 req/s (the shared DB has
	// ample headroom at this load).
	cfg := clusterConfig(tierOf(workload.AppServF(), 2), 5600, RouteSticky)
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := 2 * workload.MaxThroughputF
	if math.Abs(res.Throughput-want)/want > 0.05 {
		t.Fatalf("2-server max throughput = %v, want ≈%v", res.Throughput, want)
	}
	if len(res.PerServer) != 2 {
		t.Fatalf("per-server results = %d", len(res.PerServer))
	}
	// Both members near saturation and contributing comparably.
	for _, sr := range res.PerServer {
		if sr.Utilization < 0.9 {
			t.Fatalf("%s utilisation = %v, want ≈1", sr.Name, sr.Utilization)
		}
		if math.Abs(sr.Throughput-workload.MaxThroughputF)/workload.MaxThroughputF > 0.08 {
			t.Fatalf("%s throughput = %v, want ≈186", sr.Name, sr.Throughput)
		}
	}
}

func TestClusterStickyWeightsBySpeed(t *testing.T) {
	// A mixed S+VF tier under sticky routing spreads clients by speed:
	// utilisations stay comparable despite the 3.7× speed gap.
	servers := []workload.ServerArch{workload.AppServS(), workload.AppServVF()}
	cfg := clusterConfig(servers, 1600, RouteSticky)
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	uS := res.PerServer[0].Utilization
	uVF := res.PerServer[1].Utilization
	if uS < 0.25*uVF || uS > 4*uVF {
		t.Fatalf("sticky routing left utilisations unbalanced: S=%v VF=%v", uS, uVF)
	}
	// Throughput shares track the speed ratio ≈ 86:320.
	shareS := res.PerServer[0].Throughput / res.Throughput
	wantShare := workload.MaxThroughputS / (workload.MaxThroughputS + workload.MaxThroughputVF)
	if math.Abs(shareS-wantShare) > 0.08 {
		t.Fatalf("S throughput share = %v, want ≈%v", shareS, wantShare)
	}
}

func TestClusterRoundRobinOverloadsSlowServer(t *testing.T) {
	// Speed-blind round-robin on a mixed tier sends the slow server
	// the same request rate as the fast one, saturating it first and
	// inflating the mean response time versus sticky weighting.
	servers := []workload.ServerArch{workload.AppServS(), workload.AppServVF()}
	rr, err := Run(clusterConfig(servers, 2200, RouteRoundRobin))
	if err != nil {
		t.Fatal(err)
	}
	sticky, err := Run(clusterConfig(servers, 2200, RouteSticky))
	if err != nil {
		t.Fatal(err)
	}
	uSlow := rr.PerServer[0].Utilization
	uFast := rr.PerServer[1].Utilization
	if uSlow < uFast {
		t.Fatalf("round robin should load the slow server harder: S=%v VF=%v", uSlow, uFast)
	}
	if rr.MeanRT <= sticky.MeanRT {
		t.Fatalf("round robin mean RT %v should exceed sticky %v on a heterogeneous tier",
			rr.MeanRT, sticky.MeanRT)
	}
}

func TestClusterLeastBusyAdapts(t *testing.T) {
	// Join-the-shortest-queue routes by observed backlog, so it should
	// beat speed-blind round robin on a heterogeneous tier.
	servers := []workload.ServerArch{workload.AppServS(), workload.AppServVF()}
	jsq, err := Run(clusterConfig(servers, 2200, RouteLeastBusy))
	if err != nil {
		t.Fatal(err)
	}
	rr, err := Run(clusterConfig(servers, 2200, RouteRoundRobin))
	if err != nil {
		t.Fatal(err)
	}
	if jsq.MeanRT >= rr.MeanRT {
		t.Fatalf("least-busy mean RT %v should beat round robin %v", jsq.MeanRT, rr.MeanRT)
	}
}

func TestClusterDBPerServerQueues(t *testing.T) {
	// The database keeps one FIFO queue per application server: with a
	// 3-server tier near tier saturation the DB still serves all
	// members — no server's database calls are starved.
	servers := tierOf(workload.AppServF(), 3)
	cfg := clusterConfig(servers, 8400, RouteSticky)
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, sr := range res.PerServer {
		if sr.Completed == 0 {
			t.Fatalf("server %s starved", sr.Name)
		}
	}
	if res.DBUtilization >= 1 {
		t.Fatalf("db utilisation = %v", res.DBUtilization)
	}
	// Aggregate throughput ≈ 3×186 (db is not yet the bottleneck).
	want := 3 * workload.MaxThroughputF
	if math.Abs(res.Throughput-want)/want > 0.06 {
		t.Fatalf("3-server throughput = %v, want ≈%v", res.Throughput, want)
	}
}

func TestClusterCachePerServer(t *testing.T) {
	// Session caches live per server. Sticky routing keeps a client on
	// one server (few misses once warm); per-request round robin
	// scatters a client's requests across caches, multiplying misses.
	servers := tierOf(workload.AppServF(), 4)
	const clients = 200
	mk := func(routing RoutingPolicy) Config {
		cfg := clusterConfig(servers, clients, routing)
		cfg.Cache = &CacheConfig{
			SizeBytes:        8 * 1024 * 1024,
			SessionBytesMean: 4096,
			MissExtraDBCalls: 1,
		}
		return cfg
	}
	sticky, err := Run(mk(RouteSticky))
	if err != nil {
		t.Fatal(err)
	}
	rr, err := Run(mk(RouteRoundRobin))
	if err != nil {
		t.Fatal(err)
	}
	if sticky.CacheMissRate > 0.05 {
		t.Fatalf("sticky warm miss rate = %v, want ≈0", sticky.CacheMissRate)
	}
	if rr.CacheMissRate <= sticky.CacheMissRate {
		t.Fatalf("scattering requests should raise the miss rate: rr=%v sticky=%v",
			rr.CacheMissRate, sticky.CacheMissRate)
	}
}
