package trade

import (
	"errors"
	"math"

	"perfpred/internal/scenario"
	"perfpred/internal/sim"
	"perfpred/internal/stats"
	"perfpred/internal/workload"
)

// scenStreamBase offsets the sim.Split indices of scenario generator
// streams off the pool root, far above any other Split consumer, so
// cohort streams can never collide with future pool-root splits.
// Cohort i draws arrivals from Split(base+2i) and MMPP modulation
// from Split(base+2i+1) — pure functions of (Seed, pool, cohort), so
// a spec-driven fleet's trajectory is identical at any shard count.
const scenStreamBase uint64 = 1 << 20

// scenGen drives one open scenario cohort through the pooled request
// lifecycle. It mirrors startOpenStream's structure — schedule the
// next arrival first, then build the current request on a pooled
// reqState — with the constant-rate Poisson draw replaced by the
// cohort's compiled generator (thinned time-varying Poisson, MMPP, or
// trace replay). The arrive continuation is bound once at
// registration and the generator pulls allocate nothing, so the
// steady-state arrival path stays zero-alloc.
type scenGen struct {
	s       *simulator
	gen     *scenario.Gen
	sampler *typeSampler
	acc     *classAcc
	cls     int
	pendRT  workload.RequestType // the scheduled arrival's trace type ("" = sample the mix)
	arrive  func()
}

// startScenarioStream registers one open cohort's generator and
// schedules its first arrival.
func (s *simulator) startScenarioStream(co *scenario.Cohort, classIdx int, sampler *typeSampler, root *sim.Stream) {
	g := &scenGen{
		s: s,
		gen: scenario.NewGen(co,
			root.Split(scenStreamBase+uint64(2*classIdx)),
			root.Split(scenStreamBase+uint64(2*classIdx)+1)),
		sampler: sampler,
		acc:     s.acc[co.Class.Name],
		cls:     classIdx,
	}
	g.arrive = g.doArrive
	g.pull()
}

// pull takes the generator's next arrival and schedules the arrive
// continuation at its absolute time. An exhausted generator (a
// non-looping trace that ran out) simply stops scheduling.
func (g *scenGen) pull() {
	t, rt, ok := g.gen.Next()
	if !ok {
		return
	}
	g.pendRT = rt
	delay := t - g.s.eng.Now()
	if delay < 0 {
		delay = 0
	}
	g.s.eng.Schedule(delay, g.arrive)
}

// doArrive admits one scenario arrival: schedule the successor first
// (matching the legacy open-stream ordering, so the request build
// below can synchronously admit without perturbing the arrival
// clock), then run the request like any open arrival — mix-sampled or
// trace-recorded type, speed-weighted routing, no session cache.
func (g *scenGen) doArrive() {
	s := g.s
	rt := g.pendRT
	g.pull()
	var d workload.Demand
	if rt != "" {
		d = s.cfg.Demands[rt]
	} else {
		d = g.sampler.sample(s.choose)
	}
	r := s.getReq()
	r.acc = g.acc
	r.cls = g.cls
	r.d = d
	r.arrival = s.eng.Now()
	r.srv = s.pickServerOpen()
	r.app = s.apps[r.srv]
	if s.router != nil {
		// Open arrivals are never routed across pools, but they occupy
		// the pool, so the router's in-flight state counts them.
		s.router.Started(int(s.poolID), g.cls)
	}
	r.app.slots.Acquire(0, r.onSlot)
}

// WindowPoint is one fixed-width window of a scenario run: the
// completions it saw and their mean response time. The transient-
// error study compares these against per-window predictions.
type WindowPoint struct {
	// Start and End bound the window in simulated seconds from cold
	// start.
	Start float64 `json:"start"`
	End   float64 `json:"end"`
	// Completed counts responses finished inside the window.
	Completed int `json:"completed"`
	// MeanRT is their mean response time (0 if none completed).
	MeanRT float64 `json:"mean_rt"`
	// Throughput is Completed over the window width.
	Throughput float64 `json:"throughput"`
}

// Windows runs the configured workload from a cold start — no warm-up
// discard; the config's WarmUp field is ignored — and reports
// completions in fixed-width windows across Duration. Unlike
// TransientCurve it keeps open populations active, because
// time-varying open traffic (flash sales, MMPP bursts) is exactly
// what the windowed view is for. Single-engine configurations only.
func Windows(cfg Config, window float64) ([]WindowPoint, error) {
	if window <= 0 {
		return nil, errors.New("trade: window must be positive")
	}
	if cfg.sharded() {
		return nil, errors.New("trade: windowed runs are not supported on sharded configurations")
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	n := int(math.Ceil(cfg.Duration / window))
	if n < 1 {
		n = 1
	}
	accs := make([]stats.Accumulator, n)
	s, err := newSimulator(cfg, simOptions{
		intercept: func(now, rt float64) {
			idx := int(now / window)
			if idx >= n {
				idx = n - 1
			}
			accs[idx].Add(rt)
		},
	})
	if err != nil {
		return nil, err
	}
	s.eng.Run(cfg.Duration, 0)
	points := make([]WindowPoint, n)
	for i := range points {
		start := float64(i) * window
		end := start + window
		if end > cfg.Duration {
			end = cfg.Duration
		}
		points[i] = WindowPoint{
			Start:      start,
			End:        end,
			Completed:  accs[i].Count(),
			MeanRT:     accs[i].Mean(),
			Throughput: float64(accs[i].Count()) / (end - start),
		}
	}
	return points, nil
}
