package trade

import (
	"math"
	"testing"

	"perfpred/internal/workload"
)

func adaptiveConfig(seed int64) Config {
	return Config{
		Server:   workload.AppServF(),
		DB:       workload.CaseStudyDB(),
		Demands:  workload.CaseStudyDemands(),
		Load:     workload.TypicalWorkload(600),
		Seed:     seed,
		WarmUp:   10,
		Duration: 60,
	}
}

func TestRunAdaptiveValidation(t *testing.T) {
	if _, err := RunAdaptive(adaptiveConfig(1), RunControl{}); err == nil {
		t.Fatal("zero target should fail")
	}
	if _, err := RunAdaptive(adaptiveConfig(1), RunControl{TargetRelErr: 0.1, MaxDuration: 5, BatchLength: 10, MinBatches: 10}); err == nil {
		t.Fatal("cap smaller than the minimum batch budget should fail")
	}
	bad := adaptiveConfig(1)
	bad.Duration = 0
	if _, err := RunAdaptive(bad, RunControl{TargetRelErr: 0.1}); err == nil {
		t.Fatal("invalid config should fail")
	}
}

func TestRunAdaptiveConverges(t *testing.T) {
	const target = 0.05
	res, err := RunAdaptive(adaptiveConfig(3), RunControl{TargetRelErr: target})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("lightly loaded run did not converge: rel err %v after %d batches", res.AchievedRelErr, res.Batches)
	}
	if res.AchievedRelErr > target {
		t.Fatalf("achieved rel err %v exceeds target %v despite convergence", res.AchievedRelErr, target)
	}
	if res.Batches < 10 {
		t.Fatalf("stopped after %d batches, floor is 10", res.Batches)
	}
	// The minimum adaptive window equals the fixed horizon (10 batches
	// of Duration/10); the result reports what was actually measured.
	if res.Duration < 60 {
		t.Fatalf("measured window %v below the configured minimum 60", res.Duration)
	}
	if res.Throughput <= 0 || res.MeanRT <= 0 {
		t.Fatal("empty measurements")
	}
}

func TestRunAdaptiveHonorsCap(t *testing.T) {
	// An absurdly tight target cannot converge inside the cap; the run
	// must stop at MaxDuration and say so.
	res, err := RunAdaptive(adaptiveConfig(5), RunControl{TargetRelErr: 1e-9, MaxDuration: 120})
	if err != nil {
		t.Fatal(err)
	}
	if res.Converged {
		t.Fatal("target 1e-9 should not converge in 120s")
	}
	if res.Duration != 120 {
		t.Fatalf("measured window %v, want the 120s cap", res.Duration)
	}
}

// TestRunAdaptiveMatchesLongFixedRun is the precision property: across
// seeds, the adaptive estimate lands within a few targets' width of a
// fixed-horizon run long enough to treat as ground truth.
func TestRunAdaptiveMatchesLongFixedRun(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-seed simulation sweep")
	}
	const target = 0.05
	for _, seed := range []int64{2, 7, 19} {
		cfg := adaptiveConfig(seed)
		adaptive, err := RunAdaptive(cfg, RunControl{TargetRelErr: target})
		if err != nil {
			t.Fatal(err)
		}
		long := cfg
		long.Seed = seed + 1000 // independent run of the same system
		long.Duration = 1200
		truth, err := Run(long)
		if err != nil {
			t.Fatal(err)
		}
		rel := math.Abs(adaptive.MeanRT-truth.MeanRT) / truth.MeanRT
		if rel > 4*target {
			t.Errorf("seed %d: adaptive mean %v vs long-run %v (rel %v > %v)", seed, adaptive.MeanRT, truth.MeanRT, rel, 4*target)
		}
	}
}

// TestRunAdaptiveDeterministic pins reproducibility: identical configs
// and controls measure identical windows and means.
func TestRunAdaptiveDeterministic(t *testing.T) {
	ctl := RunControl{TargetRelErr: 0.08}
	a, err := RunAdaptive(adaptiveConfig(13), ctl)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunAdaptive(adaptiveConfig(13), ctl)
	if err != nil {
		t.Fatal(err)
	}
	if a.MeanRT != b.MeanRT || a.Duration != b.Duration || a.Batches != b.Batches {
		t.Fatalf("identical adaptive runs diverged: %+v vs %+v", a, b)
	}
}

// TestMeasureCurveAdaptiveParallel drives concurrent adaptive,
// streaming-percentile measurements through MeasureCurve — the
// configuration the race detector must clear — and checks worker-count
// independence.
func TestMeasureCurveAdaptiveParallel(t *testing.T) {
	opt := MeasureOptions{
		Seed:                 17,
		WarmUp:               5,
		Duration:             30,
		TargetRelErr:         0.1,
		StreamingPercentiles: true,
	}
	counts := []int{100, 300, 500, 700}
	serialOpt := opt
	serialOpt.Workers = 1
	serial, err := MeasureCurve(workload.AppServF(), counts, 0, serialOpt)
	if err != nil {
		t.Fatal(err)
	}
	parallelRun, err := MeasureCurve(workload.AppServF(), counts, 0, opt)
	if err != nil {
		t.Fatal(err)
	}
	for i := range serial {
		s, p := serial[i].Res, parallelRun[i].Res
		if s.MeanRT != p.MeanRT || s.Duration != p.Duration || s.Batches != p.Batches {
			t.Fatalf("point %d: serial %+v vs parallel %+v", i, s, p)
		}
		if !s.Converged {
			t.Errorf("point %d did not converge", i)
		}
		if s.OverallQuantiles == nil {
			t.Errorf("point %d missing streaming quantiles", i)
		}
	}
}

// TestMeasureAdaptiveOption checks the MeasureOptions plumbing: a
// positive TargetRelErr must produce an adaptive result.
func TestMeasureAdaptiveOption(t *testing.T) {
	res, err := Measure(workload.AppServF(), workload.TypicalWorkload(300), MeasureOptions{
		Seed: 3, WarmUp: 5, Duration: 30, TargetRelErr: 0.1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Batches == 0 {
		t.Fatal("adaptive option ignored: no batch diagnostics")
	}
	fixed, err := Measure(workload.AppServF(), workload.TypicalWorkload(300), MeasureOptions{
		Seed: 3, WarmUp: 5, Duration: 30,
	})
	if err != nil {
		t.Fatal(err)
	}
	if fixed.Batches != 0 || fixed.Converged {
		t.Fatal("fixed-horizon run should carry no adaptive diagnostics")
	}
}
