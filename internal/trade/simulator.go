package trade

import (
	"math"

	"perfpred/internal/sim"
	"perfpred/internal/stats"
	"perfpred/internal/workload"
)

// appServer is one member of the application tier: a servlet thread
// pool, a time-shared CPU and (in the §7.2 variant) a session cache in
// its own main memory.
type appServer struct {
	arch      workload.ServerArch
	slots     *sim.Semaphore
	cpu       *sim.Station
	cache     *lruCache
	csLock    *sim.Semaphore // §8.1 critical-section mutex (nil unless enabled)
	completed uint64
}

// simulator wires the application-server tier and the database server
// into a closed multi-class network and drives the client populations.
// The workload-manager routing of the paper's §2 decides which server
// each request visits; the database server keeps one FIFO queue per
// application server (sim.PerSourceFIFO keyed by server index).
type simulator struct {
	cfg  Config
	eng  *sim.Engine
	apps []*appServer

	dbSlots *sim.Semaphore // db agent pool, per-app-server FIFO
	dbCPU   *sim.Station   // time-shared db CPU/disk

	think  *sim.Stream
	serve  *sim.Stream
	choose *sim.Stream
	route  *sim.Stream

	rrNext       int
	sessionBytes map[int]int64

	measuring bool
	acc       map[string]*classAcc
	ops       *opAccumulators
	opAccRNG  *sim.Stream
}

type classAcc struct {
	rt        stats.Accumulator
	samples   []float64
	seen      int
	maxSample int
	rng       *sim.Stream // reservoir sampling stream
}

func (a *classAcc) record(rt float64) {
	a.rt.Add(rt)
	a.seen++
	if len(a.samples) < a.maxSample {
		a.samples = append(a.samples, rt)
		return
	}
	// Reservoir sampling keeps an unbiased percentile estimate with
	// bounded memory on very long runs.
	if idx := a.rng.Intn(a.seen); idx < a.maxSample {
		a.samples[idx] = rt
	}
}

// client is one closed-loop request generator. home is the application
// server a sticky workload manager assigned it to (-1 when requests
// are routed dynamically).
type client struct {
	id      int
	class   workload.ServiceClass
	home    int
	session *buySession // non-nil for detailed buy clients
}

// buySession tracks a detailed buy client's place in its
// register → buys → logoff cycle and its growing portfolio (§3.1).
type buySession struct {
	phase    int // 0 register, 1 buying, 2 logoff
	buysLeft int
	holdings int
}

// Run simulates the configured measurement and returns its result.
func Run(cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.MaxRTSamples == 0 {
		cfg.MaxRTSamples = DefaultMaxRTSamples
	}
	eng := sim.NewEngine()
	root := sim.NewStream(cfg.Seed)
	s := &simulator{
		cfg:     cfg,
		eng:     eng,
		dbSlots: sim.NewSemaphore(eng, cfg.DB.Name+"/agents", cfg.DB.MPL, sim.PerSourceFIFO),
		dbCPU:   sim.NewStation(eng, cfg.DB.Name+"/cpu", cfg.DB.Speed, 0, sim.GlobalFIFO),
		think:   root.Derive(1),
		serve:   root.Derive(2),
		choose:  root.Derive(3),
		route:   root.Derive(5),
		acc:     make(map[string]*classAcc),
	}
	for _, arch := range cfg.tier() {
		app := &appServer{
			arch:  arch,
			slots: sim.NewSemaphore(eng, arch.Name+"/threads", arch.MPL, sim.GlobalFIFO),
			cpu:   sim.NewStation(eng, arch.Name+"/cpu", arch.Speed, 0, sim.GlobalFIFO),
		}
		if cfg.Cache != nil {
			app.cache = newLRUCache(cfg.Cache.SizeBytes)
		}
		if cfg.CriticalSection != nil {
			app.csLock = sim.NewSemaphore(eng, arch.Name+"/critsec", 1, sim.GlobalFIFO)
		}
		s.apps = append(s.apps, app)
	}
	if cfg.Cache != nil {
		s.sessionBytes = make(map[int]int64)
	}
	if cfg.DetailedOperations {
		s.ops = newOpAccumulators(cfg.MaxRTSamples)
		s.opAccRNG = root.Derive(7)
	}
	sampleRNG := root.Derive(4)
	arrivals := root.Derive(6)
	id := 0
	for _, pop := range cfg.Load {
		s.acc[pop.Class.Name] = &classAcc{maxSample: cfg.MaxRTSamples, rng: sampleRNG.Derive(uint64(len(s.acc)))}
		if pop.Open() {
			// Open stream (§8.1): Poisson arrivals at a constant rate,
			// each an independent request with no think loop and no
			// session identity.
			s.startOpenStream(pop, arrivals.Derive(uint64(len(s.acc))))
			continue
		}
		for i := 0; i < pop.Clients; i++ {
			c := &client{id: id, class: pop.Class, home: -1}
			if cfg.Routing == RouteSticky || cfg.Routing == "" {
				c.home = s.assignSticky()
			}
			if cfg.DetailedOperations && pop.Class.Mix.Fraction(workload.Buy) == 1 {
				c.session = &buySession{}
			}
			id++
			if s.sessionBytes != nil {
				size := int64(s.serve.Exp(cfg.Cache.SessionBytesMean))
				if size < 1 {
					size = 1
				}
				s.sessionBytes[c.id] = size
			}
			// Stagger initial arrivals across one think time so the
			// run does not start with a synchronized burst.
			eng.Schedule(s.think.Exp(pop.Class.ThinkTimeMean), func() { s.issueRequest(c) })
		}
	}
	// Warm up, reset statistics, then measure.
	eng.Run(cfg.WarmUp, 0)
	s.resetStats()
	s.measuring = true
	eng.Run(cfg.WarmUp+cfg.Duration, 0)
	return s.collect(), nil
}

// startOpenStream schedules Poisson arrivals for an open population.
// Each arrival routes like a dynamic request (sticky policies fall
// back to speed-weighted random choice — an arrival has no home
// server) and bypasses the session cache, which models per-client
// state that open requests do not carry.
func (s *simulator) startOpenStream(pop workload.Population, rng *sim.Stream) {
	mean := 1 / pop.ArrivalRate
	var arrive func()
	arrive = func() {
		s.eng.Schedule(rng.Exp(mean), arrive)
		demand := s.cfg.Demands[s.pickRequestType(pop.Class)]
		arrival := s.eng.Now()
		srv := s.pickServerOpen()
		app := s.apps[srv]
		app.slots.Acquire(0, func() {
			s.processOpenRequest(srv, demand, func() {
				app.slots.Release()
				if s.measuring {
					s.acc[pop.Class.Name].record(s.eng.Now() - arrival)
					app.completed++
				}
			})
		})
	}
	s.eng.Schedule(rng.Exp(mean), arrive)
}

// pickServerOpen routes an open arrival: dynamic policies apply as-is;
// sticky falls back to speed-weighted random selection.
func (s *simulator) pickServerOpen() int {
	switch s.cfg.Routing {
	case RouteRoundRobin, RouteLeastBusy:
		return s.pickServer(&client{home: 0})
	default:
		return s.assignSticky()
	}
}

// processOpenRequest is processRequest without session-cache handling.
func (s *simulator) processOpenRequest(srv int, d workload.Demand, done func()) {
	app := s.apps[srv]
	dbCalls := s.sampleCalls(d.DBCallsPerRequest)
	totalCPU := s.serve.Exp(d.AppServerTime)
	segment := totalCPU / float64(dbCalls+1)
	var step func(remaining int)
	step = func(remaining int) {
		app.cpu.Submit(0, segment, func() {
			if remaining == 0 {
				done()
				return
			}
			s.dbSlots.Acquire(srv, func() {
				s.dbCPU.Submit(srv, s.serve.Exp(d.DBTimePerCall), func() {
					s.dbSlots.Release()
					if d.DBLatencyPerCall > 0 {
						s.eng.Schedule(s.serve.Exp(d.DBLatencyPerCall), func() { step(remaining - 1) })
						return
					}
					step(remaining - 1)
				})
			})
		})
	}
	step(dbCalls)
}

// assignSticky spreads clients across the tier in proportion to server
// speed, the division a workload manager would make from the speed
// benchmarks.
func (s *simulator) assignSticky() int {
	if len(s.apps) == 1 {
		return 0
	}
	weights := make([]float64, len(s.apps))
	for i, app := range s.apps {
		weights[i] = app.arch.Speed
	}
	return s.route.Choose(weights)
}

// pickServer routes one request per the configured policy.
func (s *simulator) pickServer(c *client) int {
	switch s.cfg.Routing {
	case RouteRoundRobin:
		i := s.rrNext % len(s.apps)
		s.rrNext++
		return i
	case RouteLeastBusy:
		best, bestLoad := 0, math.MaxInt
		for i, app := range s.apps {
			load := app.slots.Held() + app.slots.Queued()
			if load < bestLoad {
				best, bestLoad = i, load
			}
		}
		return best
	default: // RouteSticky
		return c.home
	}
}

func (s *simulator) resetStats() {
	for _, app := range s.apps {
		app.cpu.ResetStats()
		app.slots.ResetStats()
		app.completed = 0
		if app.cache != nil {
			app.cache.resetStats()
		}
	}
	s.dbCPU.ResetStats()
	s.dbSlots.ResetStats()
}

// issueRequest begins one request: pick the operation (or coarse
// request type) for this client, route it to an application server,
// queue for a thread, process, respond, then think and repeat.
func (s *simulator) issueRequest(c *client) {
	demand, opName := s.nextRequest(c)
	arrival := s.eng.Now()
	srv := s.pickServer(c)
	app := s.apps[srv]
	app.slots.Acquire(0, func() {
		s.processRequest(c, srv, demand, func() {
			app.slots.Release()
			if s.measuring {
				rt := s.eng.Now() - arrival
				s.acc[c.class.Name].record(rt)
				if s.ops != nil && opName != "" {
					s.ops.record(opName, rt, func() *classAcc {
						return &classAcc{maxSample: s.cfg.MaxRTSamples, rng: s.opAccRNG.Derive(uint64(len(s.ops.byName)))}
					})
				}
				app.completed++
			}
			s.eng.Schedule(s.think.Exp(c.class.ThinkTimeMean), func() { s.issueRequest(c) })
		})
	})
}

// nextRequest resolves the client's next request to a demand and,
// under DetailedOperations, the Trade operation behind it.
func (s *simulator) nextRequest(c *client) (workload.Demand, string) {
	rt := s.pickRequestType(c.class)
	d := s.cfg.Demands[rt]
	if !s.cfg.DetailedOperations {
		return d, ""
	}
	if c.session != nil {
		return s.nextBuyOperation(c, d)
	}
	if c.class.Mix.Fraction(workload.Browse) == 1 {
		ops := BrowseOperations()
		weights := make([]float64, len(ops))
		for i, op := range ops {
			weights[i] = op.Weight
		}
		op := ops[s.choose.Choose(weights)]
		return applyOperation(d, op), op.Name
	}
	return d, ""
}

// nextBuyOperation advances the client's buy session: register/login,
// a run of buys with a growing portfolio, then logoff (§3.1).
func (s *simulator) nextBuyOperation(c *client, d workload.Demand) (workload.Demand, string) {
	sess := c.session
	register, buyOp, logoff := BuySessionOperations()
	switch sess.phase {
	case 0:
		sess.phase = 1
		sess.buysLeft = workload.BuyRequestsPerSession
		sess.holdings = 0
		return applyOperation(d, register), register.Name
	case 1:
		scaled := applyOperation(d, buyOp)
		scaled.AppServerTime *= portfolioScale(sess.holdings)
		sess.holdings++
		sess.buysLeft--
		if sess.buysLeft == 0 {
			sess.phase = 2
		}
		return scaled, buyOp.Name
	default:
		sess.phase = 0
		return applyOperation(d, logoff), logoff.Name
	}
}

// applyOperation specialises a request type's demand for one
// operation.
func applyOperation(d workload.Demand, op Operation) workload.Demand {
	out := d
	out.AppServerTime = d.AppServerTime * op.DemandScale
	if op.DBCalls > 0 {
		out.DBCallsPerRequest = op.DBCalls
	}
	return out
}

func (s *simulator) pickRequestType(class workload.ServiceClass) workload.RequestType {
	if len(class.Mix) == 1 {
		for rt := range class.Mix {
			return rt
		}
	}
	types := make([]workload.RequestType, 0, len(class.Mix))
	weights := make([]float64, 0, len(class.Mix))
	for _, rt := range orderedTypes(class.Mix) {
		types = append(types, rt)
		weights = append(weights, class.Mix[rt])
	}
	return types[s.choose.Choose(weights)]
}

// orderedTypes returns map keys in a fixed order so runs are
// deterministic for a given seed.
func orderedTypes(m workload.Mix) []workload.RequestType {
	out := make([]workload.RequestType, 0, len(m))
	for rt := range m {
		out = append(out, rt)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// processRequest runs the request's service demand as CPU bursts
// interleaved with synchronous database calls, holding the
// application-server thread throughout — the WebSphere servlet
// semantics the paper's layered model captures with nested service.
// Database calls queue in the server's own FIFO at the database (§2).
func (s *simulator) processRequest(c *client, srv int, d workload.Demand, done func()) {
	app := s.apps[srv]
	dbCalls := s.sampleCalls(d.DBCallsPerRequest)
	dbTime := d.DBTimePerCall
	if app.cache != nil {
		size := s.sessionBytes[c.id]
		if !app.cache.touch(c.id, size) {
			extra := s.sampleCalls(s.cfg.Cache.MissExtraDBCalls)
			dbCalls += extra
		}
	}
	totalCPU := s.serve.Exp(d.AppServerTime) // reference-scale demand; CPU speed scales service
	segments := dbCalls + 1
	segment := totalCPU / float64(segments)
	var step func(remainingCalls int)
	enter := func() { step(dbCalls) }
	if cs := s.cfg.CriticalSection; cs != nil && s.serve.Float64() < cs.Fraction {
		// The request must hold the server-global lock while executing
		// the protected section — the implicit queue of §8.1.
		inner := enter
		enter = func() {
			app.csLock.Acquire(0, func() {
				app.cpu.Submit(0, s.serve.Exp(cs.MeanTime), func() {
					app.csLock.Release()
					inner()
				})
			})
		}
	}
	step = func(remainingCalls int) {
		app.cpu.Submit(0, segment, func() {
			if remainingCalls == 0 {
				done()
				return
			}
			perCall := dbTime
			if app.cache != nil && s.cfg.Cache.MissDBTimePerCall > 0 {
				// The session read uses the configured miss cost; the
				// request's own calls keep their type's cost. Using
				// the max keeps the model simple while preserving the
				// extra-work effect.
				perCall = math.Max(dbTime, s.cfg.Cache.MissDBTimePerCall)
			}
			s.dbSlots.Acquire(srv, func() {
				s.dbCPU.Submit(srv, s.serve.Exp(perCall), func() {
					s.dbSlots.Release()
					if d.DBLatencyPerCall > 0 {
						// Pure per-call latency (disk/network): the
						// thread waits it out off-CPU.
						s.eng.Schedule(s.serve.Exp(d.DBLatencyPerCall), func() { step(remainingCalls - 1) })
						return
					}
					step(remainingCalls - 1)
				})
			})
		})
	}
	enter()
}

// sampleCalls draws an integer call count with the given mean:
// floor(mean) plus a Bernoulli trial on the fractional part, the
// standard way to realise the paper's fractional "1.14 database
// requests on average".
func (s *simulator) sampleCalls(mean float64) int {
	if mean <= 0 {
		return 0
	}
	base := int(mean)
	frac := mean - float64(base)
	if frac > 0 && s.serve.Float64() < frac {
		base++
	}
	return base
}

func (s *simulator) collect() *Result {
	res := &Result{
		PerClass: make(map[string]ClassResult, len(s.acc)),
		Duration: s.cfg.Duration,
	}
	var speedSum, utilSum, heldSum, queueSum float64
	var hits, misses uint64
	for _, app := range s.apps {
		u := app.cpu.Utilization()
		res.PerServer = append(res.PerServer, ServerResult{
			Name:          app.arch.Name,
			Utilization:   u,
			MeanSlotsHeld: app.slots.MeanHeld(),
			Completed:     int(app.completed),
			Throughput:    float64(app.completed) / s.cfg.Duration,
		})
		speedSum += app.arch.Speed
		utilSum += u * app.arch.Speed
		heldSum += app.slots.MeanHeld()
		queueSum += app.slots.MeanQueued()
		if app.cache != nil {
			hits += app.cache.hits
			misses += app.cache.misses
		}
	}
	// Tier-level utilisation is the speed-weighted mean: the fraction
	// of the tier's total processing capacity in use.
	if speedSum > 0 {
		res.AppUtilization = utilSum / speedSum
	}
	res.MeanAppSlotsHeld = heldSum
	res.MeanAppQueue = queueSum
	res.DBUtilization = s.dbCPU.Utilization()
	if hits+misses > 0 {
		res.CacheMissRate = float64(misses) / float64(hits+misses)
	}
	var totalWeighted float64
	totalCompleted := 0
	for name, acc := range s.acc {
		cr := ClassResult{
			Class:      name,
			Completed:  acc.rt.Count(),
			MeanRT:     acc.rt.Mean(),
			RTStdDev:   acc.rt.StdDev(),
			Throughput: float64(acc.rt.Count()) / s.cfg.Duration,
			Samples:    acc.samples,
		}
		res.PerClass[name] = cr
		totalWeighted += cr.MeanRT * float64(cr.Completed)
		totalCompleted += cr.Completed
	}
	if totalCompleted > 0 {
		res.MeanRT = totalWeighted / float64(totalCompleted)
	}
	res.Throughput = float64(totalCompleted) / s.cfg.Duration
	if s.ops != nil {
		res.PerOperation = s.ops.results()
	}
	return res
}
