package trade

import (
	"math"
	"sort"

	"perfpred/internal/scenario"
	"perfpred/internal/sim"
	"perfpred/internal/stats"
	"perfpred/internal/workload"
)

// appServer is one member of the application tier: a servlet thread
// pool, a time-shared CPU and (in the §7.2 variant) a session cache in
// its own main memory.
type appServer struct {
	arch      workload.ServerArch
	slots     *sim.Semaphore
	cpu       *sim.Station
	cache     *lruCache
	csLock    *sim.Semaphore // §8.1 critical-section mutex (nil unless enabled)
	completed uint64
}

// simulator wires the application-server tier and the database server
// into a closed multi-class network and drives the client populations.
// The workload-manager routing of the paper's §2 decides which server
// each request visits; the database server keeps one FIFO queue per
// application server (sim.PerSourceFIFO keyed by server index).
//
// All per-request state is pooled: clients live in one slice, request
// lifecycles in a free list of reqStates, and the per-class mixes are
// pre-resolved into typeSamplers — the steady-state request loop
// performs no heap allocation.
type simulator struct {
	cfg  Config
	eng  *sim.Engine
	apps []*appServer

	dbSlots *sim.Semaphore // db agent pool, per-app-server FIFO
	dbCPU   *sim.Station   // time-shared db CPU/disk

	think  *sim.Stream
	serve  *sim.Stream
	choose *sim.Stream
	route  *sim.Stream
	remote *sim.Stream // cross-pool decisions; non-nil only in sharded runs with RemoteFraction > 0

	// Sharded-fleet wiring (nil/zero on the legacy single-engine path):
	// the pool's shard, its stable pool index, references to sibling
	// pools, the resolved hop latency and a free list of cross-pool
	// request records.
	shard    *sim.Shard
	poolID   uint64
	pools    []*simulator
	xLatency float64
	sendSeq  uint64
	xFree    *xreq
	router   PoolRouter // per-request routing hook (nil = static assignment)

	rrNext        int
	stickyWeights []float64 // server speeds, hoisted for assignSticky
	sessionBytes  []int64   // per-client session size (cache variant)

	clients  []client     // closed clients, pooled in one slice
	sessions []buySession // detailed buy sessions, pooled in one slice
	reqFree  *reqState    // retired request records for reuse

	// Plain instrumentation counters (a simulator is single-goroutine);
	// flushMetrics publishes them to the process-wide atomics at collect.
	poolReuses, poolAllocs uint64

	measuring   bool
	measuredDur float64 // actual measurement window (adaptive runs); 0 = cfg.Duration
	acc         map[string]*classAcc
	classNames  []string // sorted class names for deterministic collection
	overall     *stats.StreamingQuantiles
	ops         *opAccumulators

	// intercept, when set, receives every completion (simulated time,
	// response time) from t=0 instead of the measuring-gated class
	// accumulators — the transient study's hook.
	intercept func(now, rt float64)

	// Hoisted detailed-operation tables (§3.1), resolved once per run.
	browseOps                   []Operation
	browseWeights               []float64
	opRegister, opBuy, opLogoff Operation
}

// simOptions selects constructor variants shared by the steady-state
// and transient entry points.
type simOptions struct {
	// skipOpen leaves open populations idle — the transient study
	// covers the closed populations.
	skipOpen bool
	// intercept routes every completion to the caller from t=0.
	intercept func(now, rt float64)

	// Sharded-fleet construction (set by newShardedSim): build the pool
	// on an existing shard engine with a pool-split root stream instead
	// of a private heap engine seeded directly from cfg.Seed.
	shard   *sim.Shard
	root    *sim.Stream
	poolID  uint64
	latency float64
}

type classAcc struct {
	rt        stats.Accumulator
	samples   []float64
	seen      int
	maxSample int
	rng       *sim.Stream               // reservoir sampling stream
	quant     *stats.StreamingQuantiles // non-nil in streaming mode
}

func (a *classAcc) record(rt float64) {
	a.rt.Add(rt)
	if a.quant != nil {
		a.quant.Add(rt)
		return
	}
	a.seen++
	if a.seen <= a.maxSample {
		// Filling phase: every observation is retained, so quantiles
		// over the buffer are exact — no replacement draws are made and
		// the buffer is an unbiased (indeed complete) sample.
		a.samples = append(a.samples, rt)
		return
	}
	// Reservoir sampling (Algorithm R): observation number `seen`
	// replaces a uniformly random slot with probability
	// maxSample/seen, keeping every prefix a uniform sample.
	if idx := a.rng.Intn(a.seen); idx < a.maxSample {
		a.samples[idx] = rt
	}
}

// client is one closed-loop request generator. home is the application
// server a sticky workload manager assigned it to (-1 when requests
// are routed dynamically).
type client struct {
	id       int
	class    workload.ServiceClass
	classIdx int // index of the client's population in Config.Load (routing key)
	home     int
	session  *buySession // non-nil for detailed buy clients

	detailBrowse bool           // detailed-operations browse client
	sampler      *typeSampler   // the class's resolved request-type mix
	acc          *classAcc      // the class's response-time accumulator
	think        *scenario.Dist // scenario think-time distribution (nil = legacy exponential)
	issue        func()         // bound once: begin the next request
}

// thinkDelay draws the client's next think time: the scenario
// cohort's declared distribution when one is attached, the legacy
// exponential otherwise. Both draw from the simulator's think stream,
// and a scenario cohort declaring an exponential think makes the
// exact draw the legacy path would, so the two modes stay comparable
// seed-for-seed.
func (s *simulator) thinkDelay(c *client) float64 {
	if c.think != nil {
		return c.think.Sample(s.think)
	}
	return s.think.Exp(c.class.ThinkTimeMean)
}

// buySession tracks a detailed buy client's place in its
// register → buys → logoff cycle and its growing portfolio (§3.1).
type buySession struct {
	phase    int // 0 register, 1 buying, 2 logoff
	buysLeft int
	holdings int
}

// Run simulates the configured measurement and returns its result.
func Run(cfg Config) (*Result, error) {
	if cfg.sharded() {
		return runSharded(cfg)
	}
	s, err := newSimulator(cfg, simOptions{})
	if err != nil {
		return nil, err
	}
	// Warm up, reset statistics, then measure.
	s.eng.Run(s.cfg.WarmUp, 0)
	s.resetStats()
	s.measuring = true
	s.eng.Run(s.cfg.WarmUp+s.cfg.Duration, 0)
	return s.collect(), nil
}

// newSimulator builds the network, registers every population and
// schedules the initial arrivals. Both Run and TransientCurve use it,
// so transient studies honour the full Config (caches, critical
// sections, multi-server tiers) with the same per-seed draw sequences.
func newSimulator(cfg Config, opt simOptions) (*simulator, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.MaxRTSamples == 0 {
		cfg.MaxRTSamples = DefaultMaxRTSamples
	}
	// A scenario supplies the workload: materialise it into the local
	// config copy so population bookkeeping (accumulators, routers,
	// collection) works unchanged, and keep the cohorts aligned with the
	// derived Load for the scenario-specific registration below.
	var cohorts []*scenario.Cohort
	if cfg.Scenario != nil {
		cfg.Load = cfg.Scenario.Workload()
		cohorts = cfg.Scenario.Cohorts
	}
	eng := sim.NewEngine()
	root := sim.NewStream(cfg.Seed)
	if opt.shard != nil {
		// Sharded pool: run on the shard's calendar engine with a root
		// stream split by stable pool index, so the pool's entire draw
		// sequence is a pure function of (Seed, pool) — invariant under
		// the pool→shard mapping.
		eng = opt.shard.Eng
		root = opt.root
	}
	s := &simulator{
		cfg:       cfg,
		eng:       eng,
		dbSlots:   sim.NewSemaphore(eng, cfg.DB.Name+"/agents", cfg.DB.MPL, sim.PerSourceFIFO),
		dbCPU:     sim.NewStation(eng, cfg.DB.Name+"/cpu", cfg.DB.Speed, 0, sim.GlobalFIFO),
		think:     root.Derive(1),
		serve:     root.Derive(2),
		choose:    root.Derive(3),
		route:     root.Derive(5),
		acc:       make(map[string]*classAcc),
		intercept: opt.intercept,
	}
	for _, arch := range cfg.tier() {
		app := &appServer{
			arch:  arch,
			slots: sim.NewSemaphore(eng, arch.Name+"/threads", arch.MPL, sim.GlobalFIFO),
			cpu:   sim.NewStation(eng, arch.Name+"/cpu", arch.Speed, 0, sim.GlobalFIFO),
		}
		if cfg.Cache != nil {
			app.cache = newLRUCache(cfg.Cache.SizeBytes)
		}
		if cfg.CriticalSection != nil {
			app.csLock = sim.NewSemaphore(eng, arch.Name+"/critsec", 1, sim.GlobalFIFO)
		}
		s.apps = append(s.apps, app)
	}
	if len(s.apps) > 1 {
		s.stickyWeights = make([]float64, len(s.apps))
		for i, app := range s.apps {
			s.stickyWeights[i] = app.arch.Speed
		}
	}
	if cfg.StreamingPercentiles {
		s.overall = stats.NewStreamingQuantiles(cfg.StreamQuantiles)
	}
	if cfg.DetailedOperations {
		s.ops = newOpAccumulators(cfg.MaxRTSamples, root.Derive(7), cfg.StreamingPercentiles, cfg.StreamQuantiles)
		s.browseOps = BrowseOperations()
		s.browseWeights = make([]float64, len(s.browseOps))
		for i, op := range s.browseOps {
			s.browseWeights[i] = op.Weight
		}
		s.opRegister, s.opBuy, s.opLogoff = BuySessionOperations()
	}
	sampleRNG := root.Derive(4)
	arrivals := root.Derive(6)

	// Pool the closed clients and detailed buy sessions in single
	// slices before registration, so per-client state never escapes to
	// individual heap objects.
	totalClients, totalSessions := 0, 0
	for _, pop := range cfg.Load {
		if pop.Open() {
			continue
		}
		totalClients += pop.Clients
		if cfg.DetailedOperations && pop.Class.Mix.Fraction(workload.Buy) == 1 {
			totalSessions += pop.Clients
		}
	}
	s.clients = make([]client, totalClients)
	s.sessions = make([]buySession, totalSessions)
	if cfg.Cache != nil {
		s.sessionBytes = make([]int64, totalClients)
	}

	// Registration order, and the draw order within it, exactly match
	// the legacy construction: per closed client a sticky-route draw,
	// a session-size draw (cache variant) and a think-time draw, in
	// population order; open streams draw their first inter-arrival gap
	// in place.
	id, sessID := 0, 0
	for pi, pop := range cfg.Load {
		sampler := newTypeSampler(pop.Class.Mix, cfg.Demands, cfg.CompatTypeChoice)
		s.acc[pop.Class.Name] = &classAcc{maxSample: cfg.MaxRTSamples, rng: sampleRNG.Derive(uint64(len(s.acc)))}
		if cfg.StreamingPercentiles {
			s.acc[pop.Class.Name].quant = stats.NewStreamingQuantiles(cfg.StreamQuantiles)
		}
		if pop.Open() {
			// Open stream: spec-defined generator for scenario cohorts
			// (Poisson, MMPP, trace, with temporal patterns); constant-rate
			// Poisson arrivals (§8.1) otherwise. Either way each arrival is
			// an independent request with no think loop and no session
			// identity.
			if !opt.skipOpen {
				if cohorts != nil {
					s.startScenarioStream(cohorts[pi], pi, sampler, root)
				} else {
					s.startOpenStream(pop, pi, sampler, arrivals.Derive(uint64(len(s.acc))))
				}
			}
			continue
		}
		for i := 0; i < pop.Clients; i++ {
			c := &s.clients[id]
			c.id = id
			c.class = pop.Class
			c.classIdx = pi
			c.home = -1
			c.sampler = sampler
			if cohorts != nil {
				c.think = cohorts[pi].Think
			}
			if cfg.Routing == RouteSticky || cfg.Routing == "" {
				c.home = s.assignSticky()
			}
			if cfg.DetailedOperations {
				if pop.Class.Mix.Fraction(workload.Buy) == 1 {
					c.session = &s.sessions[sessID]
					sessID++
				} else if pop.Class.Mix.Fraction(workload.Browse) == 1 {
					c.detailBrowse = true
				}
			}
			id++
			if s.sessionBytes != nil {
				size := int64(s.serve.Exp(cfg.Cache.SessionBytesMean))
				if size < 1 {
					size = 1
				}
				s.sessionBytes[c.id] = size
			}
			c.issue = func() { s.issueRequest(c) }
			// Stagger initial arrivals across one think time so the
			// run does not start with a synchronized burst.
			eng.Schedule(s.thinkDelay(c), c.issue)
		}
	}
	// Bind accumulators in a second pass: with duplicate class names the
	// last registration wins for every client of that name, matching the
	// legacy record-time map lookup.
	for i := range s.clients {
		s.clients[i].acc = s.acc[s.clients[i].class.Name]
	}
	s.classNames = make([]string, 0, len(s.acc))
	for name := range s.acc {
		s.classNames = append(s.classNames, name)
	}
	sort.Strings(s.classNames)
	if opt.shard != nil {
		s.shard = opt.shard
		s.poolID = opt.poolID
		s.xLatency = opt.latency
		s.router = cfg.Router
		if cfg.RemoteFraction > 0 {
			// Derived last so the pool's other streams keep the same
			// component numbering as the legacy constructor.
			s.remote = root.Derive(8)
		}
	}
	return s, nil
}

// startOpenStream schedules Poisson arrivals for an open population.
// Each arrival routes like a dynamic request (sticky policies fall
// back to speed-weighted random choice — an arrival has no home
// server) and bypasses the session cache, which models per-client
// state that open requests do not carry.
func (s *simulator) startOpenStream(pop workload.Population, classIdx int, sampler *typeSampler, rng *sim.Stream) {
	mean := 1 / pop.ArrivalRate
	name := pop.Class.Name
	var arrive func()
	arrive = func() {
		s.eng.Schedule(rng.Exp(mean), arrive)
		d := sampler.sample(s.choose)
		r := s.getReq()
		r.acc = s.acc[name]
		r.cls = classIdx
		r.d = d
		r.arrival = s.eng.Now()
		r.srv = s.pickServerOpen()
		r.app = s.apps[r.srv]
		if s.router != nil {
			// Open arrivals are never routed across pools, but they do
			// occupy the pool, so the router's in-flight state counts them.
			s.router.Started(int(s.poolID), classIdx)
		}
		r.app.slots.Acquire(0, r.onSlot)
	}
	s.eng.Schedule(rng.Exp(mean), arrive)
}

// pickServerOpen routes an open arrival: dynamic policies apply as-is;
// sticky falls back to speed-weighted random selection.
func (s *simulator) pickServerOpen() int {
	switch s.cfg.Routing {
	case RouteRoundRobin, RouteLeastBusy:
		return s.pickServerFor(0)
	default:
		return s.assignSticky()
	}
}

// assignSticky spreads clients across the tier in proportion to server
// speed, the division a workload manager would make from the speed
// benchmarks.
func (s *simulator) assignSticky() int {
	if len(s.apps) == 1 {
		return 0
	}
	return s.route.Choose(s.stickyWeights)
}

// pickServerFor routes one request per the configured policy, given
// the issuing client's home server.
func (s *simulator) pickServerFor(home int) int {
	switch s.cfg.Routing {
	case RouteRoundRobin:
		i := s.rrNext % len(s.apps)
		s.rrNext++
		return i
	case RouteLeastBusy:
		best, bestLoad := 0, math.MaxInt
		for i, app := range s.apps {
			load := app.slots.Held() + app.slots.Queued()
			if load < bestLoad {
				best, bestLoad = i, load
			}
		}
		return best
	default: // RouteSticky
		return home
	}
}

func (s *simulator) resetStats() {
	for _, app := range s.apps {
		app.cpu.ResetStats()
		app.slots.ResetStats()
		app.completed = 0
		if app.cache != nil {
			app.cache.resetStats()
		}
	}
	s.dbCPU.ResetStats()
	s.dbSlots.ResetStats()
}

// issueRequest begins one request: pick the operation (or coarse
// request type) for this client, route it to an application server,
// queue for a thread, process, respond, then think and repeat. The
// whole lifecycle runs on a pooled reqState — no per-request closures.
func (s *simulator) issueRequest(c *client) {
	if s.router != nil {
		// Per-request fleet routing: the router picks the serving pool;
		// anything but the client's own pool rides the cross-pool hop.
		if dst := s.router.Route(int(s.poolID), c.classIdx); dst != int(s.poolID) {
			s.issueRemoteTo(c, dst)
			return
		}
		s.router.Started(int(s.poolID), c.classIdx)
	} else if s.remote != nil && s.remote.Float64() < s.cfg.RemoteFraction {
		s.issueRemote(c)
		return
	}
	d, opName := s.nextRequest(c)
	r := s.getReq()
	r.c = c
	r.acc = c.acc
	r.cls = c.classIdx
	r.d = d
	r.opName = opName
	r.arrival = s.eng.Now()
	r.srv = s.pickServerFor(c.home)
	r.app = s.apps[r.srv]
	r.app.slots.Acquire(0, r.onSlot)
}

// nextRequest resolves the client's next request to a demand and,
// under DetailedOperations, the Trade operation behind it.
func (s *simulator) nextRequest(c *client) (workload.Demand, string) {
	d := c.sampler.sample(s.choose)
	if !s.cfg.DetailedOperations {
		return d, ""
	}
	if c.session != nil {
		return s.nextBuyOperation(c, d)
	}
	if c.detailBrowse {
		op := s.browseOps[s.choose.Choose(s.browseWeights)]
		return applyOperation(d, op), op.Name
	}
	return d, ""
}

// nextBuyOperation advances the client's buy session: register/login,
// a run of buys with a growing portfolio, then logoff (§3.1).
func (s *simulator) nextBuyOperation(c *client, d workload.Demand) (workload.Demand, string) {
	sess := c.session
	switch sess.phase {
	case 0:
		sess.phase = 1
		sess.buysLeft = workload.BuyRequestsPerSession
		sess.holdings = 0
		return applyOperation(d, s.opRegister), s.opRegister.Name
	case 1:
		scaled := applyOperation(d, s.opBuy)
		scaled.AppServerTime *= portfolioScale(sess.holdings)
		sess.holdings++
		sess.buysLeft--
		if sess.buysLeft == 0 {
			sess.phase = 2
		}
		return scaled, s.opBuy.Name
	default:
		sess.phase = 0
		return applyOperation(d, s.opLogoff), s.opLogoff.Name
	}
}

// applyOperation specialises a request type's demand for one
// operation.
func applyOperation(d workload.Demand, op Operation) workload.Demand {
	out := d
	out.AppServerTime = d.AppServerTime * op.DemandScale
	if op.DBCalls > 0 {
		out.DBCallsPerRequest = op.DBCalls
	}
	return out
}

// sampleCalls draws an integer call count with the given mean:
// floor(mean) plus a Bernoulli trial on the fractional part, the
// standard way to realise the paper's fractional "1.14 database
// requests on average".
func (s *simulator) sampleCalls(mean float64) int {
	if mean <= 0 {
		return 0
	}
	base := int(mean)
	frac := mean - float64(base)
	if frac > 0 && s.serve.Float64() < frac {
		base++
	}
	return base
}

// measuredTotals returns the running response-time sum and completion
// count across classes, in sorted-name order so batch-mean extraction
// is deterministic regardless of map layout.
func (s *simulator) measuredTotals() (sum float64, count int) {
	for _, name := range s.classNames {
		acc := s.acc[name]
		count += acc.rt.Count()
		sum += acc.rt.Sum()
	}
	return sum, count
}

func (s *simulator) collect() *Result {
	dur := s.measuredDur
	if dur == 0 {
		dur = s.cfg.Duration
	}
	res := &Result{
		PerClass: make(map[string]ClassResult, len(s.acc)),
		Duration: dur,
	}
	var speedSum, utilSum, heldSum, queueSum float64
	var hits, misses uint64
	for _, app := range s.apps {
		u := app.cpu.Utilization()
		res.PerServer = append(res.PerServer, ServerResult{
			Name:          app.arch.Name,
			Utilization:   u,
			MeanSlotsHeld: app.slots.MeanHeld(),
			Completed:     int(app.completed),
			Throughput:    float64(app.completed) / dur,
		})
		speedSum += app.arch.Speed
		utilSum += u * app.arch.Speed
		heldSum += app.slots.MeanHeld()
		queueSum += app.slots.MeanQueued()
		if app.cache != nil {
			hits += app.cache.hits
			misses += app.cache.misses
		}
	}
	// Tier-level utilisation is the speed-weighted mean: the fraction
	// of the tier's total processing capacity in use.
	if speedSum > 0 {
		res.AppUtilization = utilSum / speedSum
	}
	res.MeanAppSlotsHeld = heldSum
	res.MeanAppQueue = queueSum
	res.DBUtilization = s.dbCPU.Utilization()
	if hits+misses > 0 {
		res.CacheMissRate = float64(misses) / float64(hits+misses)
	}
	// Classes are collected in sorted-name order so the weighted mean's
	// floating-point summation is deterministic for any class count.
	var totalWeighted float64
	totalCompleted := 0
	for _, name := range s.classNames {
		acc := s.acc[name]
		cr := ClassResult{
			Class:      name,
			Completed:  acc.rt.Count(),
			MeanRT:     acc.rt.Mean(),
			RTStdDev:   acc.rt.StdDev(),
			Throughput: float64(acc.rt.Count()) / dur,
			Samples:    acc.samples,
			Quantiles:  acc.quant,
		}
		res.PerClass[name] = cr
		totalWeighted += cr.MeanRT * float64(cr.Completed)
		totalCompleted += cr.Completed
	}
	if totalCompleted > 0 {
		res.MeanRT = totalWeighted / float64(totalCompleted)
	}
	res.Throughput = float64(totalCompleted) / dur
	res.OverallQuantiles = s.overall
	if s.ops != nil {
		res.PerOperation = s.ops.results()
	}
	res.EventsFired = s.eng.Fired()
	s.flushMetrics(totalCompleted)
	return res
}
