package trade

import (
	"testing"

	"perfpred/internal/sim"
	"perfpred/internal/workload"
)

// TestTypeSamplerCompatMatchesLegacyChoose pins the compatibility
// contract: with CompatTypeChoice the sampler reproduces the legacy
// per-request algorithm — a CDF inversion over the mix's types in
// orderedTypes order — draw for draw.
func TestTypeSamplerCompatMatchesLegacyChoose(t *testing.T) {
	mix := workload.Mix{workload.Buy: 0.35, workload.Browse: 0.65}
	demands := workload.CaseStudyDemands()
	sampler := newTypeSampler(mix, demands, true)

	legacyTypes := orderedTypes(mix)
	legacyWeights := make([]float64, len(legacyTypes))
	for i, rt := range legacyTypes {
		legacyWeights[i] = mix[rt]
	}

	a, b := sim.NewStream(42), sim.NewStream(42)
	for i := 0; i < 1000; i++ {
		got := sampler.types[sampler.pick(a)]
		want := legacyTypes[b.Choose(legacyWeights)]
		if got != want {
			t.Fatalf("pick %d: compat sampler chose %q, legacy chose %q", i, got, want)
		}
	}
}

// TestTypeSamplerSingleTypeNoDraw pins the shared fast path: a
// single-type mix consumes no draws in either mode, so the choose
// stream's sequence is untouched — the invariant every golden output
// relies on.
func TestTypeSamplerSingleTypeNoDraw(t *testing.T) {
	demands := workload.CaseStudyDemands()
	for _, compat := range []bool{true, false} {
		sampler := newTypeSampler(workload.Mix{workload.Browse: 1}, demands, compat)
		a, b := sim.NewStream(7), sim.NewStream(7)
		for i := 0; i < 10; i++ {
			if sampler.pick(a) != 0 {
				t.Fatal("single-type mix must always pick index 0")
			}
		}
		for i := 0; i < 10; i++ {
			if x, y := a.Float64(), b.Float64(); x != y {
				t.Fatalf("compat=%v: single-type pick consumed draws", compat)
			}
		}
	}
}

// TestTypeSamplerAliasDeterministic pins the default (alias) mapping's
// request-type sequence for a fixed seed: identical streams yield
// identical sequences, and the sequence matches the alias table built
// directly from the same weights.
func TestTypeSamplerAliasDeterministic(t *testing.T) {
	mix := workload.Mix{workload.Buy: 0.25, workload.Browse: 0.75}
	demands := workload.CaseStudyDemands()
	s1 := newTypeSampler(mix, demands, false)
	s2 := newTypeSampler(mix, demands, false)
	a, b := sim.NewStream(13), sim.NewStream(13)
	for i := 0; i < 1000; i++ {
		if x, y := s1.pick(a), s2.pick(b); x != y {
			t.Fatalf("pick %d differs across identical samplers/streams", i)
		}
	}
}

// TestRunDeterministicMultiType pins full-run determinism with a
// multi-type mix under both sampling modes.
func TestRunDeterministicMultiType(t *testing.T) {
	for _, compat := range []bool{false, true} {
		cfg := Config{
			Server:  workload.AppServF(),
			DB:      workload.CaseStudyDB(),
			Demands: workload.CaseStudyDemands(),
			Load: workload.Workload{{
				Class: workload.ServiceClass{
					Name:          "mixed",
					Mix:           workload.Mix{workload.Browse: 0.7, workload.Buy: 0.3},
					ThinkTimeMean: workload.ThinkTimeMean,
				},
				Clients: 300,
			}},
			Seed:             31,
			WarmUp:           5,
			Duration:         30,
			CompatTypeChoice: compat,
		}
		r1, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		r2, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if r1.MeanRT != r2.MeanRT || r1.Throughput != r2.Throughput {
			t.Fatalf("compat=%v: identical configs diverged: %v vs %v", compat, r1, r2)
		}
	}
}

// TestTypeSamplerModesAgreeInDistribution checks the two mappings
// sample the same mix: over many picks the type frequencies agree
// within statistical noise even though the per-seed sequences differ.
func TestTypeSamplerModesAgreeInDistribution(t *testing.T) {
	mix := workload.Mix{workload.Buy: 0.4, workload.Browse: 0.6}
	demands := workload.CaseStudyDemands()
	const n = 100000
	freq := func(compat bool) float64 {
		sampler := newTypeSampler(mix, demands, compat)
		s := sim.NewStream(3)
		buys := 0
		for i := 0; i < n; i++ {
			if sampler.types[sampler.pick(s)] == workload.Buy {
				buys++
			}
		}
		return float64(buys) / n
	}
	fa, fc := freq(false), freq(true)
	if diff := fa - fc; diff < -0.01 || diff > 0.01 {
		t.Fatalf("alias buy fraction %v vs compat %v differ beyond noise", fa, fc)
	}
}
