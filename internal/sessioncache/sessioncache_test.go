package sessioncache

import (
	"math"
	"testing"

	"perfpred/internal/lqn"
	"perfpred/internal/trade"
	"perfpred/internal/workload"
)

func TestWorkingSetBytes(t *testing.T) {
	if got := WorkingSetBytes(100, 4096); got != 409600 {
		t.Fatalf("working set = %v", got)
	}
	if WorkingSetBytes(-1, 10) != 0 || WorkingSetBytes(10, -1) != 0 {
		t.Fatal("invalid inputs should yield 0")
	}
}

func TestEqualAccessMissRate(t *testing.T) {
	// Cache holds half the sessions → 50% misses.
	if got := EqualAccessMissRate(100, 100, 5000); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("miss rate = %v, want 0.5", got)
	}
	// Everything fits → 0.
	if got := EqualAccessMissRate(10, 100, 1e6); got != 0 {
		t.Fatalf("miss rate = %v, want 0", got)
	}
	// Nothing fits → 1.
	if got := EqualAccessMissRate(100, 100, 0); got != 1 {
		t.Fatalf("miss rate = %v, want 1", got)
	}
	if EqualAccessMissRate(0, 100, 100) != 0 {
		t.Fatal("no clients should yield 0")
	}
}

func TestFitMissRateModel(t *testing.T) {
	model, err := FitMissRateModel([]CachePoint{
		{CapacityBytes: 1000, MissRate: 0.8},
		{CapacityBytes: 3000, MissRate: 0.4},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := model.Predict(2000); math.Abs(got-0.6) > 1e-9 {
		t.Fatalf("interpolated miss rate = %v, want 0.6", got)
	}
	// Extrapolations clamp to [0,1].
	if got := model.Predict(10000); got != 0 {
		t.Fatalf("large-cache prediction = %v, want clamp to 0", got)
	}
	if got := model.Predict(0); got <= 0.9 {
		t.Fatalf("zero-cache prediction = %v, want ≈1", got)
	}
	if _, err := FitMissRateModel([]CachePoint{{CapacityBytes: 1, MissRate: 0.5}}); err == nil {
		t.Fatal("one point should fail")
	}
	if _, err := FitMissRateModel([]CachePoint{
		{CapacityBytes: 1, MissRate: -0.1}, {CapacityBytes: 2, MissRate: 0.5},
	}); err == nil {
		t.Fatal("invalid miss rate should fail")
	}
}

func TestFitMissRateModelFromSimulator(t *testing.T) {
	if testing.Short() {
		t.Skip("simulator-backed test")
	}
	// Measure the real LRU's miss rate at two cache sizes, fit the
	// historical model, and check it interpolates a third size — the
	// §7.2 historical-method workflow end to end.
	const clients = 300
	const sessionBytes = 4096
	measure := func(capacity int64) float64 {
		cfg := trade.Config{
			Server:   workload.AppServF(),
			DB:       workload.CaseStudyDB(),
			Demands:  workload.CaseStudyDemands(),
			Load:     workload.TypicalWorkload(clients),
			Seed:     11,
			WarmUp:   40,
			Duration: 120,
			Cache:    &trade.CacheConfig{SizeBytes: capacity, SessionBytesMean: sessionBytes, MissExtraDBCalls: 1},
		}
		res, err := trade.Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res.CacheMissRate
	}
	workingSet := int64(clients * sessionBytes)
	low := measure(workingSet / 5)
	high := measure(workingSet * 5 / 6)
	model, err := FitMissRateModel([]CachePoint{
		{CapacityBytes: float64(workingSet / 5), MissRate: low},
		{CapacityBytes: float64(workingSet * 5 / 6), MissRate: high},
	})
	if err != nil {
		t.Fatal(err)
	}
	midCap := workingSet / 2
	predicted := model.Predict(float64(midCap))
	actual := measure(midCap)
	if math.Abs(predicted-actual) > 0.20 {
		t.Fatalf("historical cache model predicted %v, measured %v", predicted, actual)
	}
}

func TestEffectiveDemand(t *testing.T) {
	d := workload.Demand{AppServerTime: 0.005, DBTimePerCall: 0.001, DBCallsPerRequest: 1}
	// 50% miss rate, 1 extra call per miss → +0.5 calls per request.
	eff, err := EffectiveDemand(d, 0.5, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(eff.DBCallsPerRequest-1.5) > 1e-12 {
		t.Fatalf("effective calls = %v, want 1.5", eff.DBCallsPerRequest)
	}
	if math.Abs(eff.TotalDBTime()-0.0015) > 1e-12 {
		t.Fatalf("effective db time = %v, want 0.0015", eff.TotalDBTime())
	}
	if eff.AppServerTime != d.AppServerTime {
		t.Fatal("app demand must be unchanged")
	}
	// Zero miss rate is identity.
	same, err := EffectiveDemand(d, 0, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if same.TotalDBTime() != d.TotalDBTime() {
		t.Fatal("zero miss rate should not change demand")
	}
	if _, err := EffectiveDemand(d, 1.5, 1, 0); err == nil {
		t.Fatal("miss rate > 1 should fail")
	}
	if _, err := EffectiveDemand(d, 0.5, -1, 0); err == nil {
		t.Fatal("negative extra calls should fail")
	}
}

func TestSolveWithCacheFixedPoint(t *testing.T) {
	const clients = 400
	const sessionBytes = 4096
	run := func(capacity float64) *CacheSolveResult {
		res, err := SolveWithCache(workload.AppServF(), workload.CaseStudyDB(),
			workload.CaseStudyDemands(), workload.TypicalWorkload(clients),
			capacity, sessionBytes, 1, 0, lqn.Options{})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	// Big cache: fixed point at 0 misses; solution matches plain LQN.
	big := run(100 * clients * sessionBytes)
	if big.MissRate != 0 {
		t.Fatalf("big cache miss rate = %v, want 0", big.MissRate)
	}
	if !big.Converged {
		t.Fatal("big-cache fixed point did not converge")
	}
	// Small cache: misses appear and the predicted response time is
	// worse than the no-cache solution.
	small := run(0.1 * clients * sessionBytes)
	if small.MissRate <= 0 || small.MissRate > 1 {
		t.Fatalf("small cache miss rate = %v", small.MissRate)
	}
	if small.Result.MeanResponseTime() <= big.Result.MeanResponseTime() {
		t.Fatalf("thrashing cache RT %v should exceed big-cache RT %v",
			small.Result.MeanResponseTime(), big.Result.MeanResponseTime())
	}
	if small.AssumptionNote == "" {
		t.Fatal("the distributional assumption must be surfaced")
	}
	// Monotonicity: shrinking the cache cannot reduce misses.
	smaller := run(0.05 * clients * sessionBytes)
	if smaller.MissRate < small.MissRate-1e-9 {
		t.Fatalf("smaller cache produced fewer misses: %v vs %v", smaller.MissRate, small.MissRate)
	}
	if _, err := SolveWithCache(workload.AppServF(), workload.CaseStudyDB(),
		workload.CaseStudyDemands(), workload.TypicalWorkload(clients),
		0, sessionBytes, 1, 0, lqn.Options{}); err == nil {
		t.Fatal("zero capacity should fail")
	}
}

// naiveSolveWithCache is the reference fixed point: rebuild and
// re-resolve the full model from scratch with a cold solver every
// iteration — the behaviour SolveWithCache had before it reused the
// resolved topology. The optimised loop must stay on the same fixed
// point.
func naiveSolveWithCache(t *testing.T, server workload.ServerArch, db workload.DBServer, demands map[workload.RequestType]workload.Demand, load workload.Workload, capacityBytes, meanSessionBytes, extraCalls, missCallTime float64, opt lqn.Options) (missRate float64, res *lqn.Result) {
	t.Helper()
	clients := load.TotalClients()
	miss := EqualAccessMissRate(clients, meanSessionBytes, capacityBytes)
	for iter := 0; iter < 100; iter++ {
		adjusted := make(map[workload.RequestType]workload.Demand, len(demands))
		for rt, d := range demands {
			eff, err := EffectiveDemand(d, miss, extraCalls, missCallTime)
			if err != nil {
				t.Fatal(err)
			}
			adjusted[rt] = eff
		}
		model, err := lqn.NewTradeModel(server, db, adjusted, load)
		if err != nil {
			t.Fatal(err)
		}
		res, err = lqn.Solve(model, opt)
		if err != nil {
			t.Fatal(err)
		}
		next := estimateMissRate(miss, res.TotalThroughput(), res.MeanResponseTime(), clients, meanSessionBytes, capacityBytes, load)
		if math.Abs(next-miss) < 1e-6 {
			return next, res
		}
		miss = 0.5*miss + 0.5*next
	}
	return miss, res
}

// TestSolveWithCacheMatchesNaiveRebuild pins the optimised fixed point
// (model built once, demands retuned in place, warm-started solver)
// against the rebuild-everything reference.
func TestSolveWithCacheMatchesNaiveRebuild(t *testing.T) {
	const clients = 400
	const sessionBytes = 4096
	for _, frac := range []float64{0.05, 0.25, 0.60, 2.0} {
		capacity := frac * clients * sessionBytes
		got, err := SolveWithCache(workload.AppServF(), workload.CaseStudyDB(),
			workload.CaseStudyDemands(), workload.TypicalWorkload(clients),
			capacity, sessionBytes, 1, 0, lqn.Options{})
		if err != nil {
			t.Fatal(err)
		}
		wantMiss, wantRes := naiveSolveWithCache(t, workload.AppServF(), workload.CaseStudyDB(),
			workload.CaseStudyDemands(), workload.TypicalWorkload(clients),
			capacity, sessionBytes, 1, 0, lqn.Options{})
		if d := math.Abs(got.MissRate - wantMiss); d > 1e-4 {
			t.Fatalf("capacity %.2f: miss rate %v, reference %v (Δ=%v)", frac, got.MissRate, wantMiss, d)
		}
		gotRT, wantRT := got.Result.MeanResponseTime(), wantRes.MeanResponseTime()
		if d := math.Abs(gotRT - wantRT); d > 1e-3*(1+wantRT) {
			t.Fatalf("capacity %.2f: RT %v, reference %v", frac, gotRT, wantRT)
		}
	}
}
