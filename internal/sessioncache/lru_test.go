package sessioncache

import (
	"fmt"
	"reflect"
	"sync"
	"testing"

	"perfpred/internal/parallel"
)

func TestLRUUnboundedByDefault(t *testing.T) {
	c := NewLRU[int, int](0)
	for i := 0; i < 1000; i++ {
		c.Put(i, i)
	}
	if c.Len() != 1000 {
		t.Fatalf("unbounded cache evicted: len = %d, want 1000", c.Len())
	}
	if _, _, evicts := c.Stats(); evicts != 0 {
		t.Fatalf("unbounded cache recorded %d evictions", evicts)
	}
}

func TestLRUEvictionOrder(t *testing.T) {
	c := NewLRU[string, int](3)
	var evicted []string
	c.OnEvict(func(k string, _ int) { evicted = append(evicted, k) })

	c.Put("a", 1)
	c.Put("b", 2)
	c.Put("c", 3)
	// Touch "a" so "b" becomes least recently used.
	if v, ok := c.Get("a"); !ok || v != 1 {
		t.Fatalf("Get(a) = (%d, %v)", v, ok)
	}
	c.Put("d", 4) // evicts b
	c.Put("e", 5) // evicts c
	if want := []string{"b", "c"}; !reflect.DeepEqual(evicted, want) {
		t.Fatalf("eviction order = %v, want %v (recency must follow Get, not just Put)", evicted, want)
	}
	if want := []string{"a", "d", "e"}; !reflect.DeepEqual(c.Keys(), want) {
		t.Fatalf("surviving keys (LRU→MRU) = %v, want %v", c.Keys(), want)
	}
	// Replacing an existing key must not evict anything.
	c.Put("a", 10)
	if len(evicted) != 2 {
		t.Fatalf("replacement evicted: %v", evicted)
	}
	if v, _ := c.Get("a"); v != 10 {
		t.Fatalf("replaced value = %d, want 10", v)
	}
}

// TestLRURebuildAfterEvict exercises the composition the serving cache
// relies on: an LRU bounded to a few models in front of a
// parallel.Memo singleflight. Evicting a key must make the next Get
// miss and run the builder again — once — while keys still resident
// never rebuild.
func TestLRURebuildAfterEvict(t *testing.T) {
	c := NewLRU[int, string](2)
	var memo parallel.Memo[int, string]
	c.OnEvict(func(k int, _ string) { memo.Forget(k) })
	builds := map[int]int{}
	var mu sync.Mutex
	get := func(k int) string {
		if v, ok := c.Get(k); ok {
			return v
		}
		v, err := memo.Do(k, func() (string, error) {
			mu.Lock()
			builds[k]++
			mu.Unlock()
			v := fmt.Sprintf("model-%d", k)
			c.Put(k, v)
			return v, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		memo.Forget(k)
		return v
	}

	get(1)
	get(2)
	get(1) // keep 1 warm: 2 is now LRU
	get(3) // evicts 2
	if builds[1] != 1 || builds[2] != 1 || builds[3] != 1 {
		t.Fatalf("builds after first pass = %v, want one each", builds)
	}
	if v := get(2); v != "model-2" { // rebuilds: 2 was evicted
		t.Fatalf("rebuilt value = %q", v)
	}
	if builds[2] != 2 {
		t.Fatalf("evicted key rebuilt %d times, want 2 (miss after evict must rebuild)", builds[2])
	}
	if v := get(1); v != "model-1" {
		t.Fatalf("get(1) = %q", v)
	}
	if builds[1] != 2 {
		// 1 was evicted in turn when 2 was rebuilt (capacity 2: {3, 2}).
		t.Fatalf("builds[1] = %d, want 2", builds[1])
	}
}

func TestLRURemove(t *testing.T) {
	c := NewLRU[string, int](2)
	evicts := 0
	c.OnEvict(func(string, int) { evicts++ })
	c.Put("a", 1)
	if !c.Remove("a") {
		t.Fatal("Remove(a) = false, want true")
	}
	if c.Remove("a") {
		t.Fatal("double Remove(a) = true")
	}
	if evicts != 0 {
		t.Fatalf("Remove triggered OnEvict %d times", evicts)
	}
	if _, ok := c.Get("a"); ok {
		t.Fatal("removed key still cached")
	}
}

func TestLRUConcurrent(t *testing.T) {
	c := NewLRU[int, int](64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				k := (g*131 + i) % 200
				if v, ok := c.Get(k); ok && v != k*3 {
					t.Errorf("Get(%d) = %d, want %d", k, v, k*3)
				}
				c.Put(k, k*3)
			}
		}(g)
	}
	wg.Wait()
	if c.Len() > 64 {
		t.Fatalf("len = %d exceeds capacity 64", c.Len())
	}
}
