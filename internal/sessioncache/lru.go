package sessioncache

import (
	"container/list"
	"sync"
)

// LRU is a concurrency-safe least-recently-used cache with an optional
// entry bound. It is the storage half of a long-lived process's model
// cache: the trade simulator's per-client session cache (lru.go in
// internal/trade) simulates LRU behaviour inside one run, whereas this
// type *is* one, holding expensive artifacts — calibrated models,
// solver workspaces — across requests so a serving process does not
// grow without bound.
//
// Capacity 0 means unbounded, which keeps existing sweep-style users
// (build every key once, read many times, exit) untouched. With a
// positive capacity, inserting past the bound evicts the
// least-recently-used entry and reports it to the OnEvict callback, so
// composed caches can drop derived state (e.g. a singleflight slot)
// and the next Get for the evicted key misses and rebuilds.
//
// LRU is safe for concurrent use. It deliberately has no loader: pair
// it with parallel.Memo so a thundering herd of misses on one key runs
// exactly one build (see internal/serve).
type LRU[K comparable, V any] struct {
	mu       sync.Mutex
	capacity int
	order    *list.List // front = most recently used
	entries  map[K]*list.Element
	onEvict  func(K, V)
	hits     uint64
	misses   uint64
	evicts   uint64
}

type lruItem[K comparable, V any] struct {
	key K
	val V
}

// NewLRU returns a cache bounded to capacity entries; capacity <= 0
// means unbounded.
func NewLRU[K comparable, V any](capacity int) *LRU[K, V] {
	if capacity < 0 {
		capacity = 0
	}
	return &LRU[K, V]{
		capacity: capacity,
		order:    list.New(),
		entries:  make(map[K]*list.Element),
	}
}

// OnEvict registers fn to be called for every entry removed by
// capacity pressure (not by Remove). fn runs with the cache lock held,
// so it must not call back into the cache.
func (c *LRU[K, V]) OnEvict(fn func(K, V)) {
	c.mu.Lock()
	c.onEvict = fn
	c.mu.Unlock()
}

// Get returns the cached value for key, marking it most recently used.
func (c *LRU[K, V]) Get(key K) (V, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		c.misses++
		var zero V
		return zero, false
	}
	c.hits++
	c.order.MoveToFront(el)
	return el.Value.(*lruItem[K, V]).val, true
}

// Put inserts or replaces the value for key, marking it most recently
// used and evicting the least-recently-used entries past capacity.
func (c *LRU[K, V]) Put(key K, val V) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		el.Value.(*lruItem[K, V]).val = val
		c.order.MoveToFront(el)
		return
	}
	c.entries[key] = c.order.PushFront(&lruItem[K, V]{key: key, val: val})
	for c.capacity > 0 && len(c.entries) > c.capacity {
		back := c.order.Back()
		if back == nil {
			break
		}
		it := back.Value.(*lruItem[K, V])
		c.order.Remove(back)
		delete(c.entries, it.key)
		c.evicts++
		if c.onEvict != nil {
			c.onEvict(it.key, it.val)
		}
	}
}

// Remove deletes key, reporting whether it was present. OnEvict is not
// called — Remove is the caller's own decision, not capacity pressure.
func (c *LRU[K, V]) Remove(key K) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		return false
	}
	c.order.Remove(el)
	delete(c.entries, key)
	return true
}

// Len returns the number of cached entries.
func (c *LRU[K, V]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Keys returns the cached keys from least to most recently used — the
// order capacity pressure would evict them in.
func (c *LRU[K, V]) Keys() []K {
	c.mu.Lock()
	defer c.mu.Unlock()
	keys := make([]K, 0, len(c.entries))
	for el := c.order.Back(); el != nil; el = el.Prev() {
		keys = append(keys, el.Value.(*lruItem[K, V]).key)
	}
	return keys
}

// Stats returns cumulative hit, miss and eviction counts.
func (c *LRU[K, V]) Stats() (hits, misses, evicts uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.evicts
}
