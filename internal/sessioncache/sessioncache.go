// Package sessioncache models the §7.2 extension: application-server
// main memory acting as an LRU cache over per-client session data,
// where a cache miss costs an extra database call.
//
// The package provides both sides of the paper's argument:
//
//   - The historical method's route: record the architecture's cache
//     (main memory) size as a variable, fit the measured miss rate
//     against it (FitMissRateModel), and fold the predicted miss rate
//     into effective request demands (EffectiveDemand). This works
//     because the historical method can fit any observable trend.
//
//   - The layered queuing method's difficulty: the per-class miss
//     probability depends on the byte-replacement process between a
//     client's requests, whose rate depends on the model's own
//     solution (throughputs and response times) *and* on arrival-rate
//     distributions that a mean-value solver does not predict.
//     SolveWithCache implements the fixed-point iteration one would
//     attempt, making the required distributional assumption explicit
//     (exponential replacement volume) — precisely the step §7.2 calls
//     out as unsupported by the layered method, since "the layered
//     queuing method does not support parameters specified in terms of
//     metrics that the model predicts".
package sessioncache

import (
	"errors"
	"fmt"
	"math"

	"perfpred/internal/lqn"
	"perfpred/internal/stats"
	"perfpred/internal/workload"
)

// WorkingSetBytes is the expected total session data for a client
// population.
func WorkingSetBytes(clients int, meanSessionBytes float64) float64 {
	if clients < 0 || meanSessionBytes < 0 {
		return 0
	}
	return float64(clients) * meanSessionBytes
}

// EqualAccessMissRate is the closed-form first-cut estimate for
// equally active clients under LRU: the cache holds the k most
// recently active sessions (k = capacity / mean session size), and a
// request hits iff its client is among them, so the miss rate is
// max(0, 1 − k/N). It ignores session-size variance and think-time
// distribution — the information the historical method picks up from
// data and the layered method cannot.
func EqualAccessMissRate(clients int, meanSessionBytes, capacityBytes float64) float64 {
	if clients <= 0 || meanSessionBytes <= 0 {
		return 0
	}
	k := capacityBytes / meanSessionBytes
	miss := 1 - k/float64(clients)
	if miss < 0 {
		return 0
	}
	if miss > 1 {
		return 1
	}
	return miss
}

// CachePoint is one historical observation of the miss rate at a cache
// capacity (the cache size recorded "as a variable", §7.2).
type CachePoint struct {
	CapacityBytes float64
	MissRate      float64
}

// MissRateModel predicts the miss rate from the architecture's cache
// size, fitted from historical observations — the historical method's
// §7.2 answer.
type MissRateModel struct {
	line stats.LinearModel
}

// FitMissRateModel fits a linear miss-rate-vs-capacity trend from two
// or more observations (predictions clamp to [0,1]).
func FitMissRateModel(points []CachePoint) (*MissRateModel, error) {
	if len(points) < 2 {
		return nil, errors.New("sessioncache: need at least two cache observations")
	}
	xs := make([]float64, len(points))
	ys := make([]float64, len(points))
	for i, p := range points {
		if p.CapacityBytes < 0 || p.MissRate < 0 || p.MissRate > 1 {
			return nil, fmt.Errorf("sessioncache: invalid observation %+v", p)
		}
		xs[i] = p.CapacityBytes
		ys[i] = p.MissRate
	}
	line, err := stats.FitLinear(xs, ys)
	if err != nil {
		return nil, err
	}
	return &MissRateModel{line: line}, nil
}

// Predict returns the fitted miss rate at the given capacity, clamped
// to [0,1].
func (m *MissRateModel) Predict(capacityBytes float64) float64 {
	r := m.line.Eval(capacityBytes)
	if r < 0 {
		return 0
	}
	if r > 1 {
		return 1
	}
	return r
}

// EffectiveDemand folds a predicted miss rate into a request type's
// demand: each miss adds extraCalls database calls of missCallTime
// seconds each (0 keeps the type's own per-call time). The result can
// be handed to any of the three methods' demand inputs.
func EffectiveDemand(d workload.Demand, missRate, extraCalls, missCallTime float64) (workload.Demand, error) {
	if missRate < 0 || missRate > 1 {
		return workload.Demand{}, fmt.Errorf("sessioncache: miss rate %v outside [0,1]", missRate)
	}
	if extraCalls < 0 {
		return workload.Demand{}, errors.New("sessioncache: negative extra calls")
	}
	if missCallTime == 0 {
		missCallTime = d.DBTimePerCall
	}
	extra := missRate * extraCalls
	out := d
	totalTime := d.TotalDBTime() + extra*missCallTime
	out.DBCallsPerRequest = d.DBCallsPerRequest + extra
	if out.DBCallsPerRequest > 0 {
		out.DBTimePerCall = totalTime / out.DBCallsPerRequest
	}
	return out, nil
}

// CacheSolveResult is the outcome of the layered fixed-point attempt.
type CacheSolveResult struct {
	// Result is the final layered solution at the converged miss rate.
	Result *lqn.Result
	// MissRate is the fixed-point miss rate.
	MissRate float64
	// Iterations spent in the outer fixed point.
	Iterations int
	// Converged reports whether the outer iteration stabilised.
	Converged bool
	// AssumptionNote records the distributional assumption the
	// iteration had to make — the step the layered method does not
	// support natively (§7.2).
	AssumptionNote string
}

// SolveWithCache attempts the §7.2 layered extension: iterate between
// (a) solving the layered model with the current miss rate folded into
// demands and (b) re-estimating the miss rate from the solution's
// throughput and response time. Step (b) requires the distribution of
// bytes replaced between a client's requests; only its *mean* is
// derivable from the solution (missRate × throughput × meanSession ×
// inter-request time), so an exponential shape is assumed — the
// unsupported extrapolation the paper identifies.
func SolveWithCache(server workload.ServerArch, db workload.DBServer, demands map[workload.RequestType]workload.Demand, load workload.Workload, capacityBytes, meanSessionBytes, extraCalls, missCallTime float64, opt lqn.Options) (*CacheSolveResult, error) {
	if capacityBytes <= 0 || meanSessionBytes <= 0 {
		return nil, errors.New("sessioncache: capacity and session size must be positive")
	}
	clients := load.TotalClients()
	miss := EqualAccessMissRate(clients, meanSessionBytes, capacityBytes) // initial guess

	// The model structure never changes across the fixed point — only
	// the effective demands do. Build it once, then retune the entry
	// demands in place each round and let a warm-started solver reuse
	// its cached resolution and previous queue lengths, instead of
	// rebuilding, re-validating and re-resolving the whole model every
	// iteration.
	adjusted := make(map[workload.RequestType]workload.Demand, len(demands))
	retune := func() error {
		for rt, d := range demands {
			eff, err := EffectiveDemand(d, miss, extraCalls, missCallTime)
			if err != nil {
				return err
			}
			adjusted[rt] = eff
		}
		return nil
	}
	if err := retune(); err != nil {
		return nil, err
	}
	model, err := lqn.NewTradeModel(server, db, adjusted, load)
	if err != nil {
		return nil, err
	}
	solver := lqn.NewSolver()
	solver.WarmStart = true

	var res *lqn.Result
	const maxOuter = 100
	converged := false
	iter := 0
	rebuilds := 0
	for ; iter < maxOuter; iter++ {
		if iter > 0 {
			if err := retune(); err != nil {
				return nil, err
			}
			if err := lqn.RetuneTradeModel(model, adjusted); err != nil {
				return nil, err
			}
			solver.InvalidateDemands()
			rebuilds++
		}
		res, err = solver.Solve(model, opt)
		if err != nil {
			return nil, err
		}
		x := res.TotalThroughput()
		r := res.MeanResponseTime()
		next := estimateMissRate(miss, x, r, clients, meanSessionBytes, capacityBytes, load)
		if math.Abs(next-miss) < 1e-6 {
			miss = next
			converged = true
			iter++
			break
		}
		// Damping keeps the outer loop stable.
		miss = 0.5*miss + 0.5*next
	}
	recordSolve(iter, rebuilds, converged)
	return &CacheSolveResult{
		Result:     res.Clone(),
		MissRate:   miss,
		Iterations: iter,
		Converged:  converged,
		AssumptionNote: "replacement volume between a client's requests assumed " +
			"exponentially distributed around its mean; the layered solver predicts " +
			"only mean values, so this distribution is an external assumption (§7.2)",
	}, nil
}

// estimateMissRate re-derives the miss probability from mean-value
// solution metrics: the mean bytes replaced during a client's
// inter-request time T = Z + R is μ = missRate·X·s̄·T, and with the
// exponential assumption P(miss) = P(replaced > capacity − s̄) =
// e^(−(C−s̄)/μ).
func estimateMissRate(miss, x, r float64, clients int, meanSession, capacity float64, load workload.Workload) float64 {
	if clients <= 0 || x <= 0 {
		return 0
	}
	if WorkingSetBytes(clients, meanSession) <= capacity {
		return 0 // everything fits; no replacement pressure
	}
	think := 0.0
	if len(load) > 0 {
		think = load[0].Class.ThinkTimeMean
	}
	t := think + r
	mu := miss * x * meanSession * t
	headroom := capacity - meanSession
	if headroom <= 0 {
		return 1
	}
	if mu <= 0 {
		// No replacement traffic yet: bootstrap from the equal-access
		// estimate so the fixed point can leave the origin.
		return EqualAccessMissRate(clients, meanSession, capacity)
	}
	p := math.Exp(-headroom / mu)
	if p > 1 {
		return 1
	}
	return p
}
