package sessioncache

import (
	"sync/atomic"

	"perfpred/internal/obs"
)

// cacheMetrics count the §7.2 layered fixed point's outer-loop work:
// how many SolveWithCache calls ran, how many outer iterations and
// demand rebuilds (retune + model re-fold) they spent, and how many
// gave up unconverged.
type cacheMetrics struct {
	solves       *obs.Counter // SolveWithCache calls completed
	iterations   *obs.Counter // outer fixed-point iterations
	rebuilds     *obs.Counter // demand retunes folded back into the model
	nonConverged *obs.Counter // fixed points that hit the iteration cap
}

var metrics atomic.Pointer[cacheMetrics]

// EnableMetrics registers the fixed point's counters on r and turns
// instrumentation on. A nil r disables instrumentation again.
func EnableMetrics(r *obs.Registry) {
	if r == nil {
		metrics.Store(nil)
		return
	}
	metrics.Store(&cacheMetrics{
		solves:       r.Counter("sessioncache_solves"),
		iterations:   r.Counter("sessioncache_iterations"),
		rebuilds:     r.Counter("sessioncache_rebuilds"),
		nonConverged: r.Counter("sessioncache_nonconverged"),
	})
}

func recordSolve(iterations, rebuilds int, converged bool) {
	m := metrics.Load()
	if m == nil {
		return
	}
	m.solves.Inc()
	m.iterations.Add(uint64(iterations))
	m.rebuilds.Add(uint64(rebuilds))
	if !converged {
		m.nonConverged.Inc()
	}
}
