package sla

import (
	"math"
	"testing"
)

func TestGoalValidate(t *testing.T) {
	if err := (Goal{MaxRT: 0.3}).Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (Goal{MaxRT: 0.3, Percentile: 0.9}).Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (Goal{MaxRT: 0}).Validate(); err == nil {
		t.Fatal("zero MaxRT should fail")
	}
	if err := (Goal{MaxRT: 0.3, Percentile: 1}).Validate(); err == nil {
		t.Fatal("percentile 1 should fail")
	}
	if err := (Goal{MaxRT: 0.3, Percentile: -0.1}).Validate(); err == nil {
		t.Fatal("negative percentile should fail")
	}
}

func TestGoalMet(t *testing.T) {
	g := Goal{MaxRT: 0.3}
	if !g.Met(0.3) || !g.Met(0.1) {
		t.Fatal("goal should be met at or below the bound")
	}
	if g.Met(0.31) {
		t.Fatal("goal should be missed above the bound")
	}
}

func TestCostModel(t *testing.T) {
	c := CostModel{FailureCostPerPct: 10, UsageCostPerPct: 2}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := c.Cost(3, 50); math.Abs(got-130) > 1e-12 {
		t.Fatalf("cost = %v, want 130", got)
	}
	if err := (CostModel{}).Validate(); err == nil {
		t.Fatal("zero cost model should fail")
	}
	if err := (CostModel{FailureCostPerPct: -1, UsageCostPerPct: 1}).Validate(); err == nil {
		t.Fatal("negative cost should fail")
	}
}

func TestTracker(t *testing.T) {
	tr := NewTracker()
	if tr.FailurePct() != 0 {
		t.Fatal("empty tracker should report 0")
	}
	tr.Serve("browse", 90)
	tr.Reject("browse", 10)
	tr.Serve("buy", 50)
	if got := tr.FailurePct(); math.Abs(got-100.0*10/150) > 1e-9 {
		t.Fatalf("overall failure pct = %v", got)
	}
	if got := tr.ClassFailurePct("browse"); math.Abs(got-10) > 1e-9 {
		t.Fatalf("browse failure pct = %v", got)
	}
	if got := tr.ClassFailurePct("buy"); got != 0 {
		t.Fatalf("buy failure pct = %v", got)
	}
	if got := tr.ClassFailurePct("ghost"); got != 0 {
		t.Fatalf("unknown class failure pct = %v", got)
	}
}

func TestTrackerClassCounts(t *testing.T) {
	tr := NewTracker()
	tr.Serve("a", 7)
	tr.Reject("a", 3)
	if tr.ClassServed("a") != 7 || tr.ClassRejected("a") != 3 {
		t.Fatalf("counts = %d/%d", tr.ClassServed("a"), tr.ClassRejected("a"))
	}
	if tr.ClassServed("b") != 0 || tr.ClassRejected("b") != 0 {
		t.Fatal("unknown class should count 0")
	}
}
