// Package sla defines service level agreement goals and the cost
// accounting the paper's resource-management study (§9) balances: the
// penalty of SLA failures against the cost of server usage.
package sla

import (
	"errors"
	"fmt"
)

// Goal is a response-time requirement for a service class. A zero
// Percentile means the goal constrains the mean response time;
// otherwise the goal is "Percentile of requests must respond within
// MaxRT" (§7.1).
type Goal struct {
	// MaxRT is the response-time bound in seconds.
	MaxRT float64
	// Percentile is the required compliant fraction in (0,1), or 0 for
	// a mean-based goal.
	Percentile float64
}

// Validate reports the first structural problem with the goal.
func (g Goal) Validate() error {
	if g.MaxRT <= 0 {
		return errors.New("sla: goal needs positive max response time")
	}
	if g.Percentile < 0 || g.Percentile >= 1 {
		return fmt.Errorf("sla: percentile %v outside [0,1)", g.Percentile)
	}
	return nil
}

// Met reports whether an observed response time satisfies the goal.
// For percentile goals, rt should be the observed response time at the
// goal percentile.
func (g Goal) Met(rt float64) bool { return rt <= g.MaxRT }

// CostModel maps the study's two cost metrics onto a single monetary
// scale — the cost-function extension §9.1 closes with ("the y-axis of
// figure 7 could become a single cost axis").
type CostModel struct {
	// FailureCostPerPct is the cost of one percentage point of average
	// SLA failures.
	FailureCostPerPct float64
	// UsageCostPerPct is the cost of one percentage point of average
	// server usage.
	UsageCostPerPct float64
}

// Validate reports the first structural problem with the cost model.
func (c CostModel) Validate() error {
	if c.FailureCostPerPct < 0 || c.UsageCostPerPct < 0 {
		return errors.New("sla: costs must be non-negative")
	}
	if c.FailureCostPerPct == 0 && c.UsageCostPerPct == 0 {
		return errors.New("sla: cost model is all zeros")
	}
	return nil
}

// Cost combines average SLA-failure and server-usage percentages into
// a single cost figure.
func (c CostModel) Cost(avgFailPct, avgUsagePct float64) float64 {
	return c.FailureCostPerPct*avgFailPct + c.UsageCostPerPct*avgUsagePct
}

// Tracker accumulates served/rejected client counts per service class
// and produces the study's %-SLA-failure metric.
type Tracker struct {
	served   map[string]int
	rejected map[string]int
}

// NewTracker returns an empty tracker.
func NewTracker() *Tracker {
	return &Tracker{served: make(map[string]int), rejected: make(map[string]int)}
}

// Serve records n clients of the class as served within goals.
func (t *Tracker) Serve(class string, n int) { t.served[class] += n }

// Reject records n clients of the class as rejected (SLA failures).
func (t *Tracker) Reject(class string, n int) { t.rejected[class] += n }

// FailurePct returns the percentage of all clients rejected.
func (t *Tracker) FailurePct() float64 {
	var s, r int
	for _, n := range t.served {
		s += n
	}
	for _, n := range t.rejected {
		r += n
	}
	if s+r == 0 {
		return 0
	}
	return 100 * float64(r) / float64(s+r)
}

// ClassServed returns the number of the class's clients served.
func (t *Tracker) ClassServed(class string) int { return t.served[class] }

// ClassRejected returns the number of the class's clients rejected.
func (t *Tracker) ClassRejected(class string) int { return t.rejected[class] }

// ClassFailurePct returns the percentage of the class's clients
// rejected.
func (t *Tracker) ClassFailurePct(class string) float64 {
	s, r := t.served[class], t.rejected[class]
	if s+r == 0 {
		return 0
	}
	return 100 * float64(r) / float64(s+r)
}
