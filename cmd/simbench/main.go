// Command simbench benchmarks the sharded discrete-event engine: the
// per-shard calendar-queue scheduler, the conservative window
// coordinator and the multi-pool Trade fleet built on them. It writes
// a BENCH_sim.json snapshot alongside BENCH_lqn.json and
// BENCH_trade.json so the repository's performance evidence covers all
// three hot paths.
//
// The snapshot records, honestly, the machine it ran on: events/second
// at 1, 2, 4 and 8 shards with the speedup relative to one shard,
// scheduler microbenchmarks (binary heap vs calendar queue, with
// allocation counts), and the headline scenario — a 1,000,000-client
// multi-pool fleet — with its wall-clock time. Shard-level speedup
// needs real cores; the "cores" field says how many this run had, so a
// flat scaling column on a 1-core container is a property of the
// machine, not the engine.
//
// Every sweep doubles as a determinism check: a fixed-seed fleet must
// report identical statistics at every shard count, and simbench fails
// loudly if it does not.
//
// Usage:
//
//	simbench [-quick] [-shards 1,2,4,8] [-out BENCH_sim.json]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"runtime"
	"strconv"
	"strings"
	"testing"
	"time"

	"perfpred/internal/sim"
	"perfpred/internal/trade"
	"perfpred/internal/workload"
)

type benchResult struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// scalingRun is one shard count of the fixed-seed fleet sweep.
type scalingRun struct {
	Shards       int     `json:"shards"`
	Events       uint64  `json:"events"`
	WallSeconds  float64 `json:"wall_seconds"`
	EventsPerSec float64 `json:"events_per_sec"`
	// SpeedupVs1Shard is wall-clock relative to the 1-shard run of the
	// identical scenario; it can only exceed 1 when cores are available.
	SpeedupVs1Shard float64 `json:"speedup_vs_1_shard"`
	// CoreBound marks a multi-shard run that executed with GOMAXPROCS=1:
	// its shards timeshared a single core, so its speedup column measures
	// coordination overhead on this machine, not the engine's scaling.
	// The speedup regression check skips such runs.
	CoreBound bool `json:"core_bound,omitempty"`
}

type scalingSweep struct {
	Pools          int          `json:"pools"`
	ClientsPerPool int          `json:"clients_per_pool"`
	TotalClients   int          `json:"total_clients"`
	RemoteFraction float64      `json:"remote_fraction"`
	SimSeconds     float64      `json:"sim_seconds"`
	Runs           []scalingRun `json:"runs"`
	// Deterministic records that every shard count reproduced the
	// 1-shard run's statistics exactly (events fired, mean RT,
	// throughput); simbench aborts if they diverge.
	Deterministic bool `json:"deterministic"`
}

type headline struct {
	TotalClients   int     `json:"total_clients"`
	Pools          int     `json:"pools"`
	Shards         int     `json:"shards"`
	RemoteFraction float64 `json:"remote_fraction"`
	SimSeconds     float64 `json:"sim_seconds"`
	Events         uint64  `json:"events"`
	WallSeconds    float64 `json:"wall_seconds"`
	EventsPerSec   float64 `json:"events_per_sec"`
	MeanRTMillis   float64 `json:"mean_rt_ms"`
	Throughput     float64 `json:"throughput_req_per_sec"`
	Under60s       bool    `json:"under_60s"`
}

type snapshot struct {
	Note       string        `json:"note"`
	Cores      int           `json:"cores"`
	GoMaxProcs int           `json:"go_max_procs"`
	Scheduler  []benchResult `json:"scheduler"`
	Scaling    scalingSweep  `json:"scaling"`
	Headline   *headline     `json:"headline,omitempty"`
}

func main() {
	quick := flag.Bool("quick", false, "small scenario for CI smoke runs (skips the 1M-client headline)")
	shards := flag.String("shards", "1,2,4,8", "comma-separated shard counts for the scaling sweep")
	out := flag.String("out", "BENCH_sim.json", "snapshot path (- for stdout)")
	flag.Parse()

	counts, err := parseShards(*shards)
	if err != nil {
		fatal(err)
	}

	snap := snapshot{
		Note: "Sharded DES engine benchmarks: calendar-queue scheduler vs binary heap, " +
			"fleet scaling by shard count, and the 1M-client headline. Shard speedup is " +
			"bounded by the cores field; multi-shard runs on one core carry core_bound " +
			"and are exempt from the speedup regression gate. Determinism is asserted, " +
			"not assumed.",
		Cores:      runtime.NumCPU(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
	}

	pending := 200000
	if *quick {
		pending = 10000
	}
	fmt.Fprintf(os.Stderr, "simbench: scheduler microbenchmarks (%d pending timers)\n", pending)
	snap.Scheduler = []benchResult{
		record(fmt.Sprintf("EngineHold%dk/heap", pending/1000), schedulerBench(sim.NewEngine, pending)),
		record(fmt.Sprintf("EngineHold%dk/calendar", pending/1000), schedulerBench(sim.NewEngineCalendar, pending)),
	}

	snap.Scaling = runScaling(counts, *quick)

	if !*quick {
		snap.Headline = runHeadline()
	}

	buf, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		fatal(err)
	}
	buf = append(buf, '\n')
	if *out == "-" {
		os.Stdout.Write(buf)
		return
	}
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "simbench: wrote %s\n", *out)
}

// schedulerBench measures per-event cost with a constant population of
// self-rescheduling timers resident in the queue — the regime a large
// fleet shard lives in, where every idle client holds a think timer.
// Steady state must be allocation-free on both backends.
func schedulerBench(newEngine func() *sim.Engine, pending int) func(b *testing.B) {
	return func(b *testing.B) {
		e := newEngine()
		rng := sim.NewStream(7)
		var fire func()
		fire = func() { e.Schedule(rng.Exp(1.0), fire) }
		for i := 0; i < pending; i++ {
			e.Schedule(rng.Float64(), fire)
		}
		b.ReportAllocs()
		b.ResetTimer()
		e.Run(math.Inf(1), uint64(b.N))
	}
}

// runScaling runs the identical seeded fleet at each shard count,
// verifying that the statistics are identical before reporting the
// wall-clock column.
func runScaling(counts []int, quick bool) scalingSweep {
	sweep := scalingSweep{
		Pools:          8,
		ClientsPerPool: 1000,
		RemoteFraction: 0.1,
		SimSeconds:     120,
	}
	if quick {
		sweep.ClientsPerPool = 100
		sweep.SimSeconds = 20
	}
	sweep.TotalClients = sweep.Pools * sweep.ClientsPerPool
	sweep.Deterministic = true

	var ref *trade.Result
	for _, nshards := range counts {
		cfg := fleetConfig(sweep.Pools, nshards, sweep.ClientsPerPool, sweep.RemoteFraction, sweep.SimSeconds)
		fmt.Fprintf(os.Stderr, "simbench: scaling sweep, %d clients, shards=%d\n", sweep.TotalClients, nshards)
		res, wall, err := timedRun(cfg)
		if err != nil {
			fatal(err)
		}
		run := scalingRun{
			Shards:       nshards,
			Events:       res.EventsFired,
			WallSeconds:  wall,
			EventsPerSec: float64(res.EventsFired) / wall,
		}
		if ref == nil {
			ref = res
		} else if res.EventsFired != ref.EventsFired || res.MeanRT != ref.MeanRT || res.Throughput != ref.Throughput {
			fatal(fmt.Errorf("determinism violated at %d shards: events/meanRT/X %d/%v/%v, 1-shard run had %d/%v/%v",
				nshards, res.EventsFired, res.MeanRT, res.Throughput, ref.EventsFired, ref.MeanRT, ref.Throughput))
		}
		if len(sweep.Runs) > 0 {
			run.SpeedupVs1Shard = sweep.Runs[0].WallSeconds / wall
		} else {
			run.SpeedupVs1Shard = 1
		}
		run.CoreBound = nshards > 1 && runtime.GOMAXPROCS(0) == 1
		// Speedup regression gate: with real cores, a multi-shard run that
		// comes in far slower than the 1-shard run means the conservative
		// window coordination regressed, and the snapshot should not paper
		// over it. On one core the shards timeshare — wall clock there
		// measures the machine, so the comparison is skipped (and the run
		// carries core_bound: true instead).
		const minSpeedup = 0.75
		if !run.CoreBound && nshards > 1 && run.SpeedupVs1Shard < minSpeedup {
			fatal(fmt.Errorf("speedup regression at %d shards: %.2fx vs 1 shard (floor %.2fx with %d procs)",
				nshards, run.SpeedupVs1Shard, minSpeedup, runtime.GOMAXPROCS(0)))
		}
		sweep.Runs = append(sweep.Runs, run)
	}
	return sweep
}

// runHeadline times the 1,000,000-client fleet: 625 pools of 1600
// clients on AppServVF (≈70% utilisation each), 2% of requests served
// by a sibling pool, 8 shards. The interactive-speed target is a
// complete run in under a minute.
func runHeadline() *headline {
	h := &headline{
		TotalClients:   1000000,
		Pools:          625,
		Shards:         8,
		RemoteFraction: 0.02,
		SimSeconds:     12,
	}
	cfg := fleetConfig(h.Pools, h.Shards, h.TotalClients/h.Pools, h.RemoteFraction, 10)
	cfg.Server = workload.AppServVF()
	cfg.WarmUp = 2
	fmt.Fprintf(os.Stderr, "simbench: headline, %d clients across %d pools, shards=%d\n",
		h.TotalClients, h.Pools, h.Shards)
	res, wall, err := timedRun(cfg)
	if err != nil {
		fatal(err)
	}
	h.Events = res.EventsFired
	h.WallSeconds = wall
	h.EventsPerSec = float64(res.EventsFired) / wall
	h.MeanRTMillis = res.MeanRT * 1000
	h.Throughput = res.Throughput
	h.Under60s = wall < 60
	return h
}

func fleetConfig(pools, shards, clientsPerPool int, remote, duration float64) trade.Config {
	return trade.Config{
		Server:         workload.AppServF(),
		DB:             workload.CaseStudyDB(),
		Demands:        workload.CaseStudyDemands(),
		Load:           workload.MixedWorkload(clientsPerPool, workload.StandardBuyFraction),
		Seed:           17,
		WarmUp:         duration / 12,
		Duration:       duration,
		MaxRTSamples:   64,
		Pools:          pools,
		Shards:         shards,
		RemoteFraction: remote,
	}
}

func timedRun(cfg trade.Config) (*trade.Result, float64, error) {
	start := time.Now()
	res, err := trade.Run(cfg)
	if err != nil {
		return nil, 0, err
	}
	wall := time.Since(start).Seconds()
	return res, wall, nil
}

func record(name string, fn func(b *testing.B)) benchResult {
	r := testing.Benchmark(fn)
	return benchResult{
		Name:        name,
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
	}
}

func parseShards(s string) ([]int, error) {
	var counts []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad shard count %q", part)
		}
		counts = append(counts, n)
	}
	if len(counts) == 0 {
		return nil, fmt.Errorf("no shard counts in %q", s)
	}
	return counts, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "simbench:", err)
	os.Exit(1)
}
