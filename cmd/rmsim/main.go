// Command rmsim runs the §9 resource-management tuning study: it
// calibrates the truth (historical) and planning (hybrid) models, then
// sweeps load and slack printing the % SLA failure and % server usage
// cost metrics of figures 5-8.
//
// Usage:
//
//	rmsim sweep  [-slack 1.1] [-seed 1]     # one figure-5/6 line
//	rmsim slacks [-from 1.1 -to 0 -step 0.1]  # figure 7
//	rmsim minzero                             # minimum 0%-failure slack
package main

import (
	"flag"
	"fmt"
	"os"

	"perfpred/internal/bench"
	"perfpred/internal/rm"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	cmd := os.Args[1]
	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	seed := fs.Int64("seed", 1, "measurement seed")
	slack := fs.Float64("slack", 1.1, "slack multiplier for 'sweep'")
	from := fs.Float64("from", 1.1, "starting slack for 'slacks'")
	to := fs.Float64("to", 0, "ending slack for 'slacks'")
	step := fs.Float64("step", 0.1, "slack step for 'slacks'")
	if err := fs.Parse(os.Args[2:]); err != nil {
		fatal(err)
	}

	// The bench suite owns the §9.1 calibration (truth = historical on
	// measurements, planner = hybrid).
	suite := bench.NewSuite(*seed)
	pred, truth, servers, err := benchSetup(suite)
	if err != nil {
		fatal(err)
	}
	loads := make([]int, 0, 16)
	for n := 1000; n <= 16000; n += 1000 {
		loads = append(loads, n)
	}

	// The study tool exists to sweep slack through and below 1 (figure
	// 7 runs all the way to 0), so it opts into sub-unity multipliers.
	opts := rm.Options{AllowDeflation: true}

	switch cmd {
	case "sweep":
		points, err := rm.SweepLoad(rm.CaseStudyShares(), servers, pred, truth, *slack, loads, opts, rm.EvalOptions{})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("slack=%.2f\nclients  fail%%   usage%%\n", *slack)
		for _, p := range points {
			fmt.Printf("%7d  %5.1f  %6.1f\n", p.TotalClients, p.SLAFailurePct, p.ServerUsagePct)
		}
	case "slacks":
		var slacks []float64
		for v := *from; v >= *to-1e-9; v -= *step {
			slacks = append(slacks, v)
		}
		points, err := rm.SweepSlack(rm.CaseStudyShares(), servers, pred, truth, slacks, loads, opts, rm.EvalOptions{})
		if err != nil {
			fatal(err)
		}
		fmt.Println("slack  avg-fail%  avg-usage%  avg-saving%")
		for _, p := range points {
			fmt.Printf("%5.2f  %8.2f  %9.1f  %10.2f\n", p.Slack, p.AvgFailPct, p.AvgUsagePct, p.AvgUsageSavingPct)
		}
	case "minzero":
		slacks := []float64{1.0, 1.025, 1.05, 1.075, 1.1, 1.15, 1.2, 1.3}
		s, err := rm.MinZeroFailureSlack(rm.CaseStudyShares(), servers, pred, truth, slacks, loads, opts, rm.EvalOptions{})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("minimum slack with 0%% SLA failures before 100%% usage: %.3f (paper: 1.1)\n", s)
	default:
		usage()
	}
}

// benchSetup asks the suite for the §9.1 predictor pair via the public
// figure path (the suite memoises the calibration).
func benchSetup(s *bench.Suite) (pred, truth rm.Predictor, servers []rm.Server, err error) {
	return s.RMSetup()
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: rmsim sweep|slacks|minzero [flags]")
	os.Exit(2)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rmsim:", err)
	os.Exit(1)
}
