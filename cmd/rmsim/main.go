// Command rmsim runs the §9 resource-management tuning study: it
// calibrates the truth (historical) and planning (hybrid) models, then
// sweeps load and slack printing the % SLA failure and % server usage
// cost metrics of figures 5-8.
//
// The fleet subcommand moves the same resource manager in-loop: a
// sharded multi-pool simulation where every request is routed by a
// pluggable scorer and Algorithm 1 replans the class→pool affinity
// periodically from inside the run (see internal/fleet).
//
// Usage:
//
//	rmsim sweep  [-slack 1.1] [-seed 1]     # one figure-5/6 line
//	rmsim slacks [-from 1.1 -to 0 -step 0.1]  # figure 7
//	rmsim minzero                             # minimum 0%-failure slack
//	rmsim frontier [-max-servers 8 -max-per-arch 4 -cost-s 0.08 -cost-f 0.17 -cost-vf 0.35]
//	             # heterogeneous cost-performance frontier ($/req axis)
//	rmsim fleet  [-pools 8] [-shards 4] [-scorer affinity] [-clients 200]
//	             [-scenario spec.json]   # spec-driven time-varying load
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"perfpred/internal/bench"
	"perfpred/internal/fleet"
	"perfpred/internal/lqn"
	"perfpred/internal/rm"
	"perfpred/internal/scenario"
	"perfpred/internal/workload"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	cmd := os.Args[1]
	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	seed := fs.Int64("seed", 1, "measurement seed")
	slack := fs.Float64("slack", 1.1, "slack multiplier for 'sweep'")
	from := fs.Float64("from", 1.1, "starting slack for 'slacks'")
	to := fs.Float64("to", 0, "ending slack for 'slacks'")
	step := fs.Float64("step", 0.1, "slack step for 'slacks'")
	pools := fs.Int("pools", 8, "server pools for 'fleet'")
	shards := fs.Int("shards", 4, "engine shards for 'fleet'")
	scorer := fs.String("scorer", "affinity",
		"routing scorer for 'fleet' ("+strings.Join(fleet.ScorerNames(), "|")+")")
	clients := fs.Int("clients", 200, "clients per pool for 'fleet'")
	duration := fs.Float64("duration", 30, "measured simulated seconds for 'fleet'")
	replan := fs.Float64("replan", 2, "replan period in simulated seconds for 'fleet' (0 disables)")
	scenarioPath := fs.String("scenario", "", "drive 'fleet' with a declarative workload spec (JSON file) instead of -clients")
	costS := fs.Float64("cost-s", 0.08, "$/hour of one AppServS for 'frontier'")
	costF := fs.Float64("cost-f", 0.17, "$/hour of one AppServF for 'frontier'")
	costVF := fs.Float64("cost-vf", 0.35, "$/hour of one AppServVF for 'frontier'")
	maxPer := fs.Int("max-per-arch", 4, "per-architecture server cap for 'frontier'")
	maxServers := fs.Int("max-servers", 8, "fleet size cap for 'frontier'")
	if err := fs.Parse(os.Args[2:]); err != nil {
		fatal(err)
	}

	if cmd == "fleet" {
		// The in-loop study needs no §9.1 calibration: the replanner
		// predicts with warm-started LQN solves directly.
		runFleet(*pools, *shards, *scorer, *clients, *duration, *replan, *seed, *scenarioPath)
		return
	}

	// The bench suite owns the §9.1 calibration (truth = historical on
	// measurements, planner = hybrid).
	suite := bench.NewSuite(*seed)
	pred, truth, servers, err := benchSetup(suite)
	if err != nil {
		fatal(err)
	}
	loads := make([]int, 0, 16)
	for n := 1000; n <= 16000; n += 1000 {
		loads = append(loads, n)
	}

	// The study tool exists to sweep slack through and below 1 (figure
	// 7 runs all the way to 0), so it opts into sub-unity multipliers.
	opts := rm.Options{AllowDeflation: true}

	switch cmd {
	case "sweep":
		points, err := rm.SweepLoad(rm.CaseStudyShares(), servers, pred, truth, *slack, loads, opts, rm.EvalOptions{})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("slack=%.2f\nclients  fail%%   usage%%\n", *slack)
		for _, p := range points {
			fmt.Printf("%7d  %5.1f  %6.1f\n", p.TotalClients, p.SLAFailurePct, p.ServerUsagePct)
		}
	case "slacks":
		var slacks []float64
		for v := *from; v >= *to-1e-9; v -= *step {
			slacks = append(slacks, v)
		}
		points, err := rm.SweepSlack(rm.CaseStudyShares(), servers, pred, truth, slacks, loads, opts, rm.EvalOptions{})
		if err != nil {
			fatal(err)
		}
		fmt.Println("slack  avg-fail%  avg-usage%  avg-saving%")
		for _, p := range points {
			fmt.Printf("%5.2f  %8.2f  %9.1f  %10.2f\n", p.Slack, p.AvgFailPct, p.AvgUsagePct, p.AvgUsageSavingPct)
		}
	case "minzero":
		slacks := []float64{1.0, 1.025, 1.05, 1.075, 1.1, 1.15, 1.2, 1.3}
		s, err := rm.MinZeroFailureSlack(rm.CaseStudyShares(), servers, pred, truth, slacks, loads, opts, rm.EvalOptions{})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("minimum slack with 0%% SLA failures before 100%% usage: %.3f (paper: 1.1)\n", s)
	case "frontier":
		// Heterogeneous-architecture cost-performance frontier: every
		// architecture mix within the caps, capacity per Algorithm 1
		// with the calibrated planner, $/req as a first-class axis.
		points, err := rm.CostFrontier(casePrices(*costS, *costF, *costVF, *maxPer), pred,
			workload.ThinkTimeMean, rm.FrontierOptions{
				Shares:     rm.CaseStudyShares(),
				Slack:      *slack,
				MaxServers: *maxServers,
			})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("slack=%.2f max-servers=%d ($%.2f/$%.2f/$%.2f per hour)\n", *slack, *maxServers, *costS, *costF, *costVF)
		fmt.Println("  S  F VF  servers  capacity   $/hour  req/s  $/Mreq  frontier")
		for _, p := range points {
			mark := ""
			if !p.Dominated {
				mark = "*"
			}
			fmt.Printf("%3d %2d %2d  %7d  %8d  %7.2f  %5.0f  %6.3f  %8s\n",
				p.Counts[0], p.Counts[1], p.Counts[2], p.Servers, p.Capacity,
				p.HourlyCost, p.ThroughputPerSec, p.CostPerMReq, mark)
		}
	default:
		usage()
	}
}

// casePrices prices the three case-study architectures for the
// frontier sweep.
func casePrices(costS, costF, costVF float64, maxPer int) []rm.ArchPrice {
	return []rm.ArchPrice{
		{Arch: workload.AppServS(), HourlyCost: costS, Max: maxPer},
		{Arch: workload.AppServF(), HourlyCost: costF, Max: maxPer},
		{Arch: workload.AppServVF(), HourlyCost: costVF, Max: maxPer},
	}
}

// benchSetup asks the suite for the §9.1 predictor pair via the public
// figure path (the suite memoises the calibration).
func benchSetup(s *bench.Suite) (pred, truth rm.Predictor, servers []rm.Server, err error) {
	return s.RMSetup()
}

// runFleet executes one in-loop fleet run: scorer-routed requests over
// a heterogeneous pool set, Algorithm 1 replanning inside the
// simulation against warm-started LQN predictions. With a scenario
// path the pools carry the spec's time-varying traffic instead of the
// fixed -clients closed population.
func runFleet(pools, shards int, scorerName string, clients int, duration, replan float64, seed int64, scenarioPath string) {
	sc, err := fleet.ScorerByName(scorerName)
	if err != nil {
		fatal(err)
	}
	archs := []workload.ServerArch{workload.AppServS(), workload.AppServF(), workload.AppServVF()}
	buy := clients / 10
	cfg := fleet.Config{
		Pools:   pools,
		Shards:  shards,
		Archs:   archs,
		DB:      workload.CaseStudyDB(),
		Demands: workload.CaseStudyDemands(),
		Load: workload.Workload{
			{Class: workload.BuyClass(0.150), Clients: buy},
			{Class: workload.BrowseClass(0.300), Clients: clients - buy},
		},
		Seed:         seed,
		WarmUp:       duration / 6,
		Duration:     duration,
		MaxRTSamples: 1000,
		Scorer:       sc,
	}
	if scenarioPath != "" {
		spec, err := scenario.Load(scenarioPath)
		if err != nil {
			fatal(err)
		}
		cfg.Load = nil
		cfg.Scenario = spec
	}
	if replan > 0 {
		pred, err := rm.NewLQNPredictor(archs, cfg.DB, cfg.Demands,
			workload.BrowseClass(0.300), lqn.Options{})
		if err != nil {
			fatal(err)
		}
		cfg.ReplanPeriod = replan
		cfg.Replanner = &rm.Replanner{Pred: pred}
		cfg.WarmupDelay = 0.5
		cfg.DrainDelay = 1
	}
	res, err := fleet.Run(cfg)
	if err != nil {
		fatal(err)
	}
	remotePct := 0.0
	if res.Decisions > 0 {
		remotePct = 100 * float64(res.Remote) / float64(res.Decisions)
	}
	load := cfg.Load
	if cfg.Scenario != nil {
		load = cfg.Scenario.Workload()
		fmt.Printf("scorer=%s pools=%d shards=%d scenario=%s seed=%d\n",
			res.Scorer, pools, shards, cfg.Scenario.Name, seed)
	} else {
		fmt.Printf("scorer=%s pools=%d shards=%d clients=%d (%d/pool) seed=%d\n",
			res.Scorer, pools, shards, clients*pools, clients, seed)
	}
	fmt.Printf("decisions=%d remote=%.1f%% barriers=%d replans=%d affinity-changes=%d wall=%.2fs\n",
		res.Decisions, remotePct, res.Barriers, res.Replans, res.AffinityChanges, res.Wall.Seconds())
	if len(res.EstimatedClients) > 0 {
		fmt.Printf("last plan's client estimates:")
		for i, pop := range load {
			fmt.Printf(" %s=%d (configured %d)", pop.Class.Name, res.EstimatedClients[i], pop.Clients*pools)
		}
		fmt.Println()
	}
	fmt.Printf("mean RT %.1f ms  throughput %.1f/s  events %d\n",
		res.Trade.MeanRT*1000, res.Trade.Throughput, res.Trade.EventsFired)
	fmt.Println("class    completed  meanRT(ms)  goal(ms)")
	for _, pop := range load {
		c := res.Trade.PerClass[pop.Class.Name]
		fmt.Printf("%-8s %9d  %10.1f  %8.0f\n",
			pop.Class.Name, c.Completed, c.MeanRT*1000, pop.Class.GoalRT*1000)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: rmsim sweep|slacks|minzero|frontier|fleet [flags]")
	os.Exit(2)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rmsim:", err)
	os.Exit(1)
}
