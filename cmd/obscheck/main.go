// Command obscheck validates a metrics report written by the -report
// flag of the experiment tools: it parses the JSON snapshot and asserts
// that the named counters are present and non-zero. The metrics-smoke
// CI tier uses it to prove the observability layer is actually wired
// through the hot paths, not just compiled in.
//
//	obscheck -in metrics.json lqn_solver_solves sim_events_fired
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"perfpred/internal/obs"
)

func main() {
	in := flag.String("in", "", "metrics snapshot JSON to check")
	flag.Parse()
	if *in == "" {
		fmt.Fprintln(os.Stderr, "usage: obscheck -in metrics.json counter ...")
		os.Exit(2)
	}
	data, err := os.ReadFile(*in)
	if err != nil {
		fatal(err)
	}
	var snap obs.Snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		fatal(fmt.Errorf("parse %s: %w", *in, err))
	}

	failed := false
	for _, name := range flag.Args() {
		v, ok := snap.Counters[name]
		switch {
		case !ok:
			fmt.Fprintf(os.Stderr, "obscheck: counter %q missing from %s\n", name, *in)
			failed = true
		case v == 0:
			fmt.Fprintf(os.Stderr, "obscheck: counter %q is zero\n", name)
			failed = true
		default:
			fmt.Printf("%s %d\n", name, v)
		}
	}
	if failed {
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "obscheck:", err)
	os.Exit(1)
}
