// Command fleetbench benchmarks the in-loop fleet resource manager:
// the zero-allocation routing hot path, the warm-started replan cut at
// window barriers, and the combined system at the 1,000,000-client
// scale the sharded engine already reaches. It writes a
// BENCH_fleet.json snapshot alongside BENCH_sim.json so the
// repository's performance evidence covers the fleet layer too.
//
// The snapshot records routing microbenchmarks per scorer (ns and
// allocations per decision — fleetbench aborts if any scorer
// allocates), an A/B table comparing Algorithm 1 routing (the
// "affinity" scorer, steered by in-loop replans) against the
// plan-oblivious scorers under one seeded scenario, replan-latency
// percentiles, and the 1M-client headline with routing and replanning
// both live. Every fleet run is also a determinism check: fleetbench
// fails loudly if a fixed-seed run diverges across shard counts.
//
// Usage:
//
//	fleetbench [-quick] [-shards 1,2,4] [-out BENCH_fleet.json]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"testing"
	"time"

	"perfpred/internal/fleet"
	"perfpred/internal/lqn"
	"perfpred/internal/rm"
	"perfpred/internal/workload"
)

type benchResult struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	// DecisionsPerSec is 1e9/NsPerOp — one op is one full routed
	// request: scorer pick, admission and completion counters, with the
	// barrier sync amortised in every 1024 decisions.
	DecisionsPerSec float64 `json:"decisions_per_sec"`
}

// scorerRun is one row of the A/B table: the identical seeded fleet
// scenario routed by a different scorer.
type scorerRun struct {
	Scorer          string  `json:"scorer"`
	MeanRTMillis    float64 `json:"mean_rt_ms"`
	Throughput      float64 `json:"throughput_req_per_sec"`
	Decisions       uint64  `json:"decisions"`
	RemotePct       float64 `json:"remote_pct"`
	Replans         int     `json:"replans"`
	AffinityChanges int     `json:"affinity_changes"`
	WallSeconds     float64 `json:"wall_seconds"`
}

type abTable struct {
	Pools          int         `json:"pools"`
	Shards         int         `json:"shards"`
	ClientsPerPool int         `json:"clients_per_pool"`
	TotalClients   int         `json:"total_clients"`
	SimSeconds     float64     `json:"sim_seconds"`
	ReplanPeriod   float64     `json:"replan_period_s"`
	Runs           []scorerRun `json:"runs"`
}

// replanStats summarises in-loop plan latencies (wall clock per
// rm.Replanner.Replan call, warm-started LQN solves included).
type replanStats struct {
	Count     int     `json:"count"`
	P50Millis float64 `json:"p50_ms"`
	P99Millis float64 `json:"p99_ms"`
	MaxMillis float64 `json:"max_ms"`
}

type headline struct {
	TotalClients        int         `json:"total_clients"`
	Pools               int         `json:"pools"`
	Shards              int         `json:"shards"`
	Scorer              string      `json:"scorer"`
	SimSeconds          float64     `json:"sim_seconds"`
	Events              uint64      `json:"events"`
	WallSeconds         float64     `json:"wall_seconds"`
	EventsPerSec        float64     `json:"events_per_sec"`
	Decisions           uint64      `json:"decisions"`
	DecisionsPerWallSec float64     `json:"decisions_per_wall_sec"`
	RemotePct           float64     `json:"remote_pct"`
	MeanRTMillis        float64     `json:"mean_rt_ms"`
	Throughput          float64     `json:"throughput_req_per_sec"`
	Replans             replanStats `json:"replans"`
	Under120s           bool        `json:"under_120s"`
}

type snapshot struct {
	Note              string        `json:"note"`
	Cores             int           `json:"cores"`
	GoMaxProcs        int           `json:"go_max_procs"`
	Routing           []benchResult `json:"routing"`
	DeterminismShards []int         `json:"determinism_shards"`
	Deterministic     bool          `json:"deterministic"`
	ReplanLatency     replanStats   `json:"replan_latency"`
	AB                abTable       `json:"ab"`
	Headline          *headline     `json:"headline,omitempty"`
}

func main() {
	quick := flag.Bool("quick", false, "small scenario for CI smoke runs (skips the 1M-client headline)")
	shards := flag.String("shards", "1,2,4", "comma-separated shard counts for the determinism check")
	out := flag.String("out", "BENCH_fleet.json", "snapshot path (- for stdout)")
	flag.Parse()

	counts, err := parseShards(*shards)
	if err != nil {
		fatal(err)
	}

	snap := snapshot{
		Note: "In-loop fleet resource manager benchmarks: per-scorer routing cost (one op = " +
			"route + admission + completion, barrier sync amortised; any allocation aborts the " +
			"run), an A/B table of Algorithm 1 affinity routing vs plan-oblivious scorers under " +
			"one seeded scenario, warm-started replan latencies, and the 1M-client headline. " +
			"Fixed-seed runs are asserted bit-identical across shard counts, not assumed.",
		Cores:      runtime.NumCPU(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
	}

	fmt.Fprintln(os.Stderr, "fleetbench: routing microbenchmarks")
	for _, name := range fleet.ScorerNames() {
		scorer, err := fleet.ScorerByName(name)
		if err != nil {
			fatal(err)
		}
		snap.Routing = append(snap.Routing, record("Route64Pools/"+name, routingBench(scorer, 64, 3)))
	}
	snap.Routing = append(snap.Routing, record("Route625Pools/affinity", routingBench(fleet.ClassAffinity{}, 625, 3)))
	for _, r := range snap.Routing {
		if r.AllocsPerOp != 0 {
			fatal(fmt.Errorf("%s allocates %d objects per decision, want 0", r.Name, r.AllocsPerOp))
		}
	}

	snap.DeterminismShards = counts
	runDeterminism(counts, *quick)
	snap.Deterministic = true

	snap.AB = runAB(*quick)
	snap.ReplanLatency = measureReplanLatency(*quick)

	if !*quick {
		snap.Headline = runHeadline()
	}

	buf, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		fatal(err)
	}
	buf = append(buf, '\n')
	if *out == "-" {
		os.Stdout.Write(buf)
		return
	}
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "fleetbench: wrote %s\n", *out)
}

// routingBench measures one fully routed request on a primed router:
// the scorer's pick over npools pools, the admission and completion
// counters, and the barrier sync amortised in once every 1024
// decisions. Steady state must be allocation-free for every scorer.
func routingBench(scorer fleet.Scorer, npools, nclasses int) func(b *testing.B) {
	return func(b *testing.B) {
		caps := make([]int, npools)
		for i := range caps {
			caps[i] = 50 + 10*(i%7)
		}
		r := fleet.NewRouter(scorer, caps, nclasses)
		// Prime uneven per-pool state so the scorers scan realistic
		// signals instead of all-zero arrays.
		for p := 0; p < npools; p++ {
			for k := 0; k < (p*13)%37; k++ {
				r.Started(p, k%nclasses)
			}
			r.Completed(p, 0, 0.05+0.001*float64(p))
			r.Started(p, 0)
		}
		r.Sync()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			cls := i % nclasses
			dst := r.Route(i%npools, cls)
			r.Started(dst, cls)
			r.Completed(dst, cls, 0.05)
			if i&1023 == 1023 {
				r.Sync()
			}
		}
	}
}

// fleetLoad is the benchmark workload: the case-study mix collapsed to
// a tight-goal buy class and a loose-goal browse class, per pool.
func fleetLoad(clientsPerPool int) workload.Workload {
	buy := clientsPerPool / 10
	return workload.Workload{
		{Class: workload.BuyClass(0.150), Clients: buy},
		{Class: workload.BrowseClass(0.300), Clients: clientsPerPool - buy},
	}
}

// newReplanner builds a fresh Algorithm 1 replanner over warm-started
// LQN solves. Each run gets its own so retained solver state never
// leaks across comparisons.
func newReplanner() *rm.Replanner {
	pred, err := rm.NewLQNPredictor(
		[]workload.ServerArch{workload.AppServS(), workload.AppServF(), workload.AppServVF()},
		workload.CaseStudyDB(), workload.CaseStudyDemands(),
		workload.BrowseClass(0.300), lqn.Options{})
	if err != nil {
		fatal(err)
	}
	return &rm.Replanner{Pred: pred}
}

func fleetCfg(pools, shards, clientsPerPool int, duration float64, scorer fleet.Scorer) fleet.Config {
	return fleet.Config{
		Pools:        pools,
		Shards:       shards,
		Archs:        []workload.ServerArch{workload.AppServS(), workload.AppServF(), workload.AppServVF()},
		DB:           workload.CaseStudyDB(),
		Demands:      workload.CaseStudyDemands(),
		Load:         fleetLoad(clientsPerPool),
		Seed:         17,
		WarmUp:       duration / 6,
		Duration:     duration,
		MaxRTSamples: 64,
		Scorer:       scorer,
		ReplanPeriod: 2,
		Replanner:    newReplanner(),
		WarmupDelay:  0.5,
		DrainDelay:   1,
	}
}

// runDeterminism executes the identical seeded replanning fleet at
// every shard count and aborts on any divergence.
func runDeterminism(counts []int, quick bool) {
	pools, clients, dur := 8, 200, 30.0
	if quick {
		pools, clients, dur = 4, 50, 10
	}
	var ref *fleet.Result
	var refShards int
	for _, nshards := range counts {
		fmt.Fprintf(os.Stderr, "fleetbench: determinism check, shards=%d\n", nshards)
		res, err := fleet.Run(fleetCfg(pools, nshards, clients, dur, fleet.ClassAffinity{}))
		if err != nil {
			fatal(err)
		}
		if ref == nil {
			ref, refShards = res, nshards
			continue
		}
		if res.Trade.EventsFired != ref.Trade.EventsFired || res.Trade.MeanRT != ref.Trade.MeanRT ||
			res.Trade.Throughput != ref.Trade.Throughput || res.Decisions != ref.Decisions ||
			res.Remote != ref.Remote || res.Replans != ref.Replans {
			fatal(fmt.Errorf("determinism violated at %d shards vs %d: events/meanRT/X/decisions/remote/replans "+
				"%d/%v/%v/%d/%d/%d vs %d/%v/%v/%d/%d/%d",
				nshards, refShards,
				res.Trade.EventsFired, res.Trade.MeanRT, res.Trade.Throughput, res.Decisions, res.Remote, res.Replans,
				ref.Trade.EventsFired, ref.Trade.MeanRT, ref.Trade.Throughput, ref.Decisions, ref.Remote, ref.Replans))
		}
	}
}

// runAB routes the identical seeded scenario with every scorer — the
// in-loop resource manager replanning throughout — so the table isolates
// the routing policy as the only variable.
func runAB(quick bool) abTable {
	ab := abTable{Pools: 8, Shards: 4, ClientsPerPool: 500, SimSeconds: 60, ReplanPeriod: 2}
	if quick {
		ab.Pools, ab.ClientsPerPool, ab.SimSeconds = 4, 100, 10
	}
	ab.TotalClients = ab.Pools * ab.ClientsPerPool
	for _, name := range fleet.ScorerNames() {
		scorer, err := fleet.ScorerByName(name)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "fleetbench: A/B run, scorer=%s, %d clients\n", name, ab.TotalClients)
		res, err := fleet.Run(fleetCfg(ab.Pools, ab.Shards, ab.ClientsPerPool, ab.SimSeconds, scorer))
		if err != nil {
			fatal(err)
		}
		ab.Runs = append(ab.Runs, scorerRun{
			Scorer:          name,
			MeanRTMillis:    res.Trade.MeanRT * 1000,
			Throughput:      res.Trade.Throughput,
			Decisions:       res.Decisions,
			RemotePct:       pct(res.Remote, res.Decisions),
			Replans:         res.Replans,
			AffinityChanges: res.AffinityChanges,
			WallSeconds:     res.Wall.Seconds(),
		})
	}
	return ab
}

// measureReplanLatency runs a replanning fleet sized for a meaningful
// latency sample and summarises the per-plan wall clock.
func measureReplanLatency(quick bool) replanStats {
	pools, clients, dur := 16, 300, 60.0
	if quick {
		pools, clients, dur = 4, 100, 10
	}
	cfg := fleetCfg(pools, 4, clients, dur, fleet.ClassAffinity{})
	cfg.ReplanPeriod = 1
	fmt.Fprintf(os.Stderr, "fleetbench: replan latency, %d pools, period %.0fs\n", pools, cfg.ReplanPeriod)
	res, err := fleet.Run(cfg)
	if err != nil {
		fatal(err)
	}
	return summarise(res.ReplanLatencies)
}

// runHeadline is the scale proof: 625 pools of 1600 clients — one
// million closed-loop clients — routed per request by the affinity
// scorer while Algorithm 1 replans the whole fleet every 2 simulated
// seconds over warm-started LQN solves, on 8 shards.
func runHeadline() *headline {
	h := &headline{
		TotalClients: 1000000,
		Pools:        625,
		Shards:       8,
		Scorer:       "affinity",
		SimSeconds:   12,
	}
	cfg := fleetCfg(h.Pools, h.Shards, h.TotalClients/h.Pools, 10, fleet.ClassAffinity{})
	cfg.WarmUp = 2
	fmt.Fprintf(os.Stderr, "fleetbench: headline, %d clients across %d pools, shards=%d\n",
		h.TotalClients, h.Pools, h.Shards)
	res, err := fleet.Run(cfg)
	if err != nil {
		fatal(err)
	}
	wall := res.Wall.Seconds()
	h.Events = res.Trade.EventsFired
	h.WallSeconds = wall
	h.EventsPerSec = float64(res.Trade.EventsFired) / wall
	h.Decisions = res.Decisions
	h.DecisionsPerWallSec = float64(res.Decisions) / wall
	h.RemotePct = pct(res.Remote, res.Decisions)
	h.MeanRTMillis = res.Trade.MeanRT * 1000
	h.Throughput = res.Trade.Throughput
	h.Replans = summarise(res.ReplanLatencies)
	h.Under120s = wall < 120
	return h
}

func summarise(lat []time.Duration) replanStats {
	if len(lat) == 0 {
		return replanStats{}
	}
	ms := make([]float64, len(lat))
	for i, d := range lat {
		ms[i] = float64(d.Nanoseconds()) / 1e6
	}
	sort.Float64s(ms)
	q := func(p float64) float64 { return ms[int(p*float64(len(ms)-1)+0.5)] }
	return replanStats{
		Count:     len(ms),
		P50Millis: q(0.50),
		P99Millis: q(0.99),
		MaxMillis: ms[len(ms)-1],
	}
}

func pct(part, whole uint64) float64 {
	if whole == 0 {
		return 0
	}
	return 100 * float64(part) / float64(whole)
}

func record(name string, fn func(b *testing.B)) benchResult {
	r := testing.Benchmark(fn)
	ns := float64(r.T.Nanoseconds()) / float64(r.N)
	return benchResult{
		Name:            name,
		NsPerOp:         ns,
		AllocsPerOp:     r.AllocsPerOp(),
		BytesPerOp:      r.AllocedBytesPerOp(),
		DecisionsPerSec: 1e9 / ns,
	}
}

func parseShards(s string) ([]int, error) {
	var counts []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad shard count %q", part)
		}
		counts = append(counts, n)
	}
	if len(counts) == 0 {
		return nil, fmt.Errorf("no shard counts in %q", s)
	}
	return counts, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fleetbench:", err)
	os.Exit(1)
}
