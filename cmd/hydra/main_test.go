package main

import (
	"path/filepath"
	"testing"

	"perfpred/internal/hist"
	"perfpred/internal/workload"
)

// TestCalibrateAll exercises the full hydra calibration pipeline the
// CLI commands share: two established servers measured and fitted,
// relationship 2 extrapolating the new one.
func TestCalibrateAll(t *testing.T) {
	if testing.Short() {
		t.Skip("simulator-backed CLI pipeline")
	}
	models, err := calibrateAll(3, hist.NewStore())
	if err != nil {
		t.Fatal(err)
	}
	for _, arch := range workload.CaseStudyServers() {
		m, ok := models[arch.Name]
		if !ok {
			t.Fatalf("no model for %s", arch.Name)
		}
		if err := m.Validate(); err != nil {
			t.Fatalf("%s: %v", arch.Name, err)
		}
		// Max throughputs track the benchmarks.
		want := arch.MaxThroughputTypical
		if m.MaxThroughput < 0.9*want || m.MaxThroughput > 1.1*want {
			t.Fatalf("%s Xmax = %v, want ≈%v", arch.Name, m.MaxThroughput, want)
		}
		// Capacity queries answer in closed form.
		n, err := m.MaxClients(0.3)
		if err != nil {
			t.Fatal(err)
		}
		if n <= 0 {
			t.Fatalf("%s capacity = %v", arch.Name, n)
		}
	}
}

// TestStoreRoundTripThroughCLIPipeline: the first calibration writes
// the store; a second pipeline run rebuilds identical models from the
// stored history without re-measuring.
func TestStoreRoundTripThroughCLIPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("simulator-backed CLI pipeline")
	}
	path := filepath.Join(t.TempDir(), "hydra.json")
	fresh, err := loadOrCalibrate(5, path)
	if err != nil {
		t.Fatal(err)
	}
	fromStore, err := loadOrCalibrate(999, path) // different seed: must not re-measure
	if err != nil {
		t.Fatal(err)
	}
	for name, a := range fresh {
		b, ok := fromStore[name]
		if !ok {
			t.Fatalf("store lost %s", name)
		}
		if a.CL != b.CL || a.LambdaL != b.LambdaL || a.MaxThroughput != b.MaxThroughput {
			t.Fatalf("%s differs after store round trip: %+v vs %+v", name, a, b)
		}
	}
}
