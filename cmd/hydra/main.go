// Command hydra drives the historical prediction method: it calibrates
// relationship 1 for the established servers from simulated
// measurements, fits relationship 2 across them, extrapolates the new
// server, and answers predictions — the workflow of the paper's HYDRA
// tool (§4).
//
// Usage:
//
//	hydra calibrate [-seed 1] [-store hydra.json]   # print Table-1-style parameters
//	hydra predict -server AppServS -clients 600 [-store hydra.json]
//	hydra capacity -server AppServF -goal 0.3 [-store hydra.json]
//
// With -store, calibration data (gradient, benchmarks, data points)
// persists to a HYDRA store file: the first invocation measures and
// records, later invocations recalibrate from the stored history
// without touching the servers — the paper's §2 recalibration service.
package main

import (
	"flag"
	"fmt"
	"os"

	"perfpred/internal/hist"
	"perfpred/internal/trade"
	"perfpred/internal/workload"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	cmd := os.Args[1]
	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	seed := fs.Int64("seed", 1, "measurement seed")
	server := fs.String("server", "AppServS", "target server architecture")
	clients := fs.Float64("clients", 500, "client population to predict")
	goal := fs.Float64("goal", 0.3, "SLA mean response-time goal, seconds")
	storePath := fs.String("store", "", "HYDRA store file for persistent calibration data")
	if err := fs.Parse(os.Args[2:]); err != nil {
		fatal(err)
	}

	models, err := loadOrCalibrate(*seed, *storePath)
	if err != nil {
		fatal(err)
	}

	switch cmd {
	case "calibrate":
		fmt.Println("server      cL(ms)   lambdaL    lambdaU(ms)  cU(ms)    m      Xmax")
		for _, arch := range workload.CaseStudyServers() {
			m := models[arch.Name]
			fmt.Printf("%-10s  %7.1f  %9.3g  %10.4g  %7.1f  %5.3f  %6.1f\n",
				arch.Name, m.CL*1000, m.LambdaL, m.LambdaU*1000, m.CU*1000, m.M, m.MaxThroughput)
		}
	case "predict":
		m, ok := models[*server]
		if !ok {
			fatal(fmt.Errorf("unknown server %q", *server))
		}
		rt := m.Predict(*clients)
		x := m.PredictThroughput(*clients)
		fmt.Printf("%s at %.0f clients: mean RT %.2f ms, throughput %.1f req/s (saturated=%v)\n",
			*server, *clients, rt*1000, x, m.Saturated(*clients))
	case "capacity":
		m, ok := models[*server]
		if !ok {
			fatal(fmt.Errorf("unknown server %q", *server))
		}
		n, err := m.MaxClients(*goal)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%s holds %.0f clients within a %.0f ms mean-RT goal (closed form, no search)\n",
			*server, n, *goal*1000)
	default:
		usage()
	}
}

// loadOrCalibrate returns per-architecture models, preferring a
// populated store over fresh measurement. When a store path is given,
// freshly measured data is recorded back to it.
func loadOrCalibrate(seed int64, storePath string) (map[string]*hist.ServerModel, error) {
	store := hist.NewStore()
	if storePath != "" {
		if err := store.LoadFile(storePath); err != nil {
			return nil, err
		}
		if models, err := modelsFromStore(store); err == nil {
			return models, nil
		}
		// Fall through to measurement on an incomplete store.
	}
	models, err := calibrateAll(seed, store)
	if err != nil {
		return nil, err
	}
	if storePath != "" {
		if err := store.SaveFile(storePath); err != nil {
			return nil, err
		}
	}
	return models, nil
}

// modelsFromStore rebuilds all three models from recorded history:
// the established servers calibrate directly; the new server comes
// from relationship 2 and its stored benchmark.
func modelsFromStore(store *hist.Store) (map[string]*hist.ServerModel, error) {
	models := make(map[string]*hist.ServerModel, 3)
	var established []*hist.ServerModel
	for _, arch := range []workload.ServerArch{workload.AppServF(), workload.AppServVF()} {
		m, err := store.Calibrate(arch, hist.TypicalWorkloadKey)
		if err != nil {
			return nil, err
		}
		models[arch.Name] = m
		established = append(established, m)
	}
	rel2, err := hist.FitRelationship2(established)
	if err != nil {
		return nil, err
	}
	sArch := workload.AppServS()
	xMaxS, ok := store.MaxThroughput(sArch.Name, hist.TypicalWorkloadKey)
	if !ok {
		return nil, fmt.Errorf("hydra: no stored benchmark for %s", sArch.Name)
	}
	sModel, err := rel2.NewServerModel(sArch, xMaxS)
	if err != nil {
		return nil, err
	}
	models[sArch.Name] = sModel
	return models, nil
}

// calibrateAll reproduces the §4 pipeline: measure the established
// servers, calibrate them, fit relationship 2, extrapolate the new
// server from its max-throughput benchmark. Measurements are recorded
// into the store as they happen.
func calibrateAll(seed int64, store *hist.Store) (map[string]*hist.ServerModel, error) {
	opt := trade.MeasureOptions{Seed: seed, WarmUp: 30, Duration: 120}
	models := make(map[string]*hist.ServerModel, 3)
	var established []*hist.ServerModel
	var gradient float64
	for _, arch := range []workload.ServerArch{workload.AppServF(), workload.AppServVF()} {
		xMax, err := trade.MaxThroughput(arch, 0, opt)
		if err != nil {
			return nil, err
		}
		if err := store.RecordMaxThroughput(arch.Name, hist.TypicalWorkloadKey, xMax); err != nil {
			return nil, err
		}
		nStar := xMax / 0.14
		counts := []int{int(0.25 * nStar), int(0.55 * nStar), int(1.2 * nStar), int(1.6 * nStar)}
		curve, err := trade.MeasureCurve(arch, counts, 0, opt)
		if err != nil {
			return nil, err
		}
		var dps []hist.DataPoint
		var tps []hist.ThroughputPoint
		for _, p := range curve {
			dp := hist.DataPoint{Clients: float64(p.Clients), MeanRT: p.Res.MeanRT}
			dps = append(dps, dp)
			if err := store.RecordPoint(arch.Name, hist.TypicalWorkloadKey, dp); err != nil {
				return nil, err
			}
			if float64(p.Clients) < 0.66*nStar {
				tps = append(tps, hist.ThroughputPoint{Clients: float64(p.Clients), Throughput: p.Res.Throughput})
			}
		}
		if gradient == 0 {
			m, err := hist.CalibrateGradient(tps)
			if err != nil {
				return nil, err
			}
			gradient = m
			if err := store.RecordGradient(m); err != nil {
				return nil, err
			}
		}
		model, err := hist.CalibrateServer(arch, xMax, gradient, dps)
		if err != nil {
			return nil, err
		}
		models[arch.Name] = model
		established = append(established, model)
	}
	rel2, err := hist.FitRelationship2(established)
	if err != nil {
		return nil, err
	}
	sArch := workload.AppServS()
	xMaxS, err := trade.MaxThroughput(sArch, 0, opt)
	if err != nil {
		return nil, err
	}
	if err := store.RecordMaxThroughput(sArch.Name, hist.TypicalWorkloadKey, xMaxS); err != nil {
		return nil, err
	}
	sModel, err := rel2.NewServerModel(sArch, xMaxS)
	if err != nil {
		return nil, err
	}
	models[sArch.Name] = sModel
	return models, nil
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: hydra calibrate|predict|capacity [flags]")
	os.Exit(2)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hydra:", err)
	os.Exit(1)
}
