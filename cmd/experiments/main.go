// Command experiments regenerates the paper's tables and figures from
// scratch: it calibrates all three prediction methods against the
// simulated testbed and prints each experiment's rows alongside the
// values the paper reports.
//
// Usage:
//
//	experiments [-seed 17] [-list] [name ...]
//
// With no names, every experiment runs in paper order.
package main

import (
	"flag"
	"fmt"
	"os"

	"perfpred/internal/bench"
)

func main() {
	seed := flag.Int64("seed", 17, "measurement seed (equal seeds reproduce identical tables)")
	list := flag.Bool("list", false, "list experiment names and exit")
	format := flag.String("format", "text", "output format: text|json")
	flag.Parse()

	if *list {
		for _, name := range bench.Experiments() {
			fmt.Println(name)
		}
		return
	}
	if *format != "text" && *format != "json" {
		fatal(fmt.Errorf("unknown format %q (want text or json)", *format))
	}
	emit := func(t *bench.Table) {
		if *format == "json" {
			if err := t.FprintJSON(os.Stdout); err != nil {
				fatal(err)
			}
			return
		}
		t.Fprint(os.Stdout)
	}

	suite := bench.NewSuite(*seed)
	names := flag.Args()
	if len(names) == 0 {
		names = bench.Experiments()
	}
	for _, name := range names {
		t, err := suite.Run(name)
		if err != nil {
			fatal(fmt.Errorf("experiment %s: %w", name, err))
		}
		emit(t)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "experiments:", err)
	os.Exit(1)
}
