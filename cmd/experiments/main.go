// Command experiments regenerates the paper's tables and figures from
// scratch: it calibrates all three prediction methods against the
// simulated testbed and prints each experiment's rows alongside the
// values the paper reports.
//
// Usage:
//
//	experiments [-seed 17] [-workers N] [-list] [-metrics-addr :9100] [-report metrics.json] [name ...]
//
// With no names, every experiment runs in paper order. Sweeps fan out
// across -workers concurrent simulations (default: all cores);
// -workers 1 reproduces the exact serial evaluation order. The
// emitted tables are byte-identical for every worker count — only the
// wall clock changes, which is reported per experiment on stderr.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"perfpred/internal/bench"
	"perfpred/internal/instrument"
	"perfpred/internal/obs"
)

func main() {
	seed := flag.Int64("seed", 17, "measurement seed (equal seeds reproduce identical tables)")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "max concurrent simulations/solves per sweep (1 = serial)")
	list := flag.Bool("list", false, "list experiment names and exit")
	format := flag.String("format", "text", "output format: text|json")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	metricsAddr := flag.String("metrics-addr", "", "serve /metrics, /debug/vars and /debug/pprof on this address (e.g. :9100)")
	report := flag.String("report", "", "write a JSON metrics snapshot to this file on exit")
	flag.Parse()

	if *metricsAddr != "" || *report != "" {
		instrument.EnableAll(obs.Default)
		if *metricsAddr != "" {
			addr, err := obs.Serve(*metricsAddr, obs.Default)
			if err != nil {
				fatal(err)
			}
			// Notices go to stderr so stdout stays byte-identical.
			fmt.Fprintf(os.Stderr, "experiments: metrics on http://%s/metrics\n", addr)
		}
		if *report != "" {
			path := *report
			defer func() {
				if err := obs.WriteReport(path, obs.Default); err != nil {
					fatal(err)
				}
			}()
		}
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fatal(err)
			}
		}()
	}

	if *list {
		for _, name := range bench.Experiments() {
			fmt.Println(name)
		}
		return
	}
	if *format != "text" && *format != "json" {
		fatal(fmt.Errorf("unknown format %q (want text or json)", *format))
	}
	emit := func(t *bench.Table) {
		if *format == "json" {
			if err := t.FprintJSON(os.Stdout); err != nil {
				fatal(err)
			}
			return
		}
		t.Fprint(os.Stdout)
	}

	suite := bench.NewSuite(*seed)
	suite.Opt.Workers = *workers
	names := flag.Args()
	if len(names) == 0 {
		names = bench.Experiments()
	}
	for _, name := range names {
		start := time.Now()
		t, err := suite.Run(name)
		if err != nil {
			fatal(fmt.Errorf("experiment %s: %w", name, err))
		}
		emit(t)
		// Wall clock goes to stderr so stdout stays byte-identical
		// across worker counts and runs.
		fmt.Fprintf(os.Stderr, "experiments: %s in %v (workers=%d)\n", name, time.Since(start).Round(time.Millisecond), *workers)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "experiments:", err)
	os.Exit(1)
}
