// Command experiments regenerates the paper's tables and figures from
// scratch: it calibrates all three prediction methods against the
// simulated testbed and prints each experiment's rows alongside the
// values the paper reports.
//
// Usage:
//
//	experiments [-seed 17] [-workers N] [-list] [-metrics-addr :9100] [-report metrics.json] [name ...]
//	experiments -scenario spec.json [-window 30] [-duration 420]
//
// With no names, every experiment runs in paper order. Sweeps fan out
// across -workers concurrent simulations (default: all cores);
// -workers 1 reproduces the exact serial evaluation order. The
// emitted tables are byte-identical for every worker count — only the
// wall clock changes, which is reported per experiment on stderr.
//
// With -scenario, the named experiments are replaced by a windowed
// transient run of the given declarative workload spec (see
// internal/scenario and examples/scenarios/): the simulated testbed
// runs the spec's time-varying traffic from a cold start and the
// table reports, per window, the spec's offered rate alongside the
// measured completions, throughput and mean response time.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"perfpred/internal/bench"
	"perfpred/internal/instrument"
	"perfpred/internal/obs"
	"perfpred/internal/scenario"
	"perfpred/internal/trade"
	"perfpred/internal/workload"
)

func main() {
	seed := flag.Int64("seed", 17, "measurement seed (equal seeds reproduce identical tables)")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "max concurrent simulations/solves per sweep (1 = serial)")
	list := flag.Bool("list", false, "list experiment names and exit")
	format := flag.String("format", "text", "output format: text|json")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	metricsAddr := flag.String("metrics-addr", "", "serve /metrics, /debug/vars and /debug/pprof on this address (e.g. :9100)")
	report := flag.String("report", "", "write a JSON metrics snapshot to this file on exit")
	scenarioPath := flag.String("scenario", "", "run a declarative workload spec (JSON file) as a windowed transient experiment instead of the paper tables")
	window := flag.Float64("window", 30, "window width in simulated seconds for -scenario")
	duration := flag.Float64("duration", 420, "simulated seconds for -scenario")
	flag.Parse()

	if *metricsAddr != "" || *report != "" {
		instrument.EnableAll(obs.Default)
		if *metricsAddr != "" {
			addr, err := obs.Serve(*metricsAddr, obs.Default)
			if err != nil {
				fatal(err)
			}
			// Notices go to stderr so stdout stays byte-identical.
			fmt.Fprintf(os.Stderr, "experiments: metrics on http://%s/metrics\n", addr)
		}
		if *report != "" {
			path := *report
			defer func() {
				if err := obs.WriteReport(path, obs.Default); err != nil {
					fatal(err)
				}
			}()
		}
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fatal(err)
			}
		}()
	}

	if *list {
		for _, name := range bench.Experiments() {
			fmt.Println(name)
		}
		return
	}
	if *format != "text" && *format != "json" {
		fatal(fmt.Errorf("unknown format %q (want text or json)", *format))
	}
	emit := func(t *bench.Table) {
		if *format == "json" {
			if err := t.FprintJSON(os.Stdout); err != nil {
				fatal(err)
			}
			return
		}
		t.Fprint(os.Stdout)
	}

	if *scenarioPath != "" {
		t, err := scenarioTable(*scenarioPath, *seed, *window, *duration)
		if err != nil {
			fatal(err)
		}
		emit(t)
		return
	}

	suite := bench.NewSuite(*seed)
	suite.Opt.Workers = *workers
	names := flag.Args()
	if len(names) == 0 {
		names = bench.Experiments()
	}
	for _, name := range names {
		start := time.Now()
		t, err := suite.Run(name)
		if err != nil {
			fatal(fmt.Errorf("experiment %s: %w", name, err))
		}
		emit(t)
		// Wall clock goes to stderr so stdout stays byte-identical
		// across worker counts and runs.
		fmt.Fprintf(os.Stderr, "experiments: %s in %v (workers=%d)\n", name, time.Since(start).Round(time.Millisecond), *workers)
	}
}

// scenarioTable cold-starts the spec's traffic on the case-study
// testbed and reports each window's offered rate next to what the
// simulation measured.
func scenarioTable(path string, seed int64, window, duration float64) (*bench.Table, error) {
	sc, err := scenario.Load(path)
	if err != nil {
		return nil, err
	}
	cfg := trade.Config{
		Server:   workload.AppServF(),
		DB:       workload.CaseStudyDB(),
		Demands:  workload.CaseStudyDemands(),
		Scenario: sc,
		Seed:     seed,
		Duration: duration,
	}
	points, err := trade.Windows(cfg, window)
	if err != nil {
		return nil, err
	}
	t := &bench.Table{
		ID:     "scenario",
		Title:  fmt.Sprintf("Windowed transient run of scenario %q", sc.Name),
		Header: []string{"window", "offered/s", "completed", "throughput/s", "meanRT(ms)"},
	}
	for _, p := range points {
		t.AddRow(
			fmt.Sprintf("[%.0f,%.0f)", p.Start, p.End),
			fmt.Sprintf("%.1f", sc.MeanOfferedRate(p.Start, p.End)),
			fmt.Sprintf("%d", p.Completed),
			fmt.Sprintf("%.1f", p.Throughput),
			fmt.Sprintf("%.1f", p.MeanRT*1000),
		)
	}
	t.AddNote("cold start (no warm-up discard); offered/s is the spec's open-cohort rate, so closed cohorts contribute 0")
	t.AddNote("seed %d, window %.0fs, horizon %.0fs on AppServF + case-study DB", seed, window, duration)
	return t, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "experiments:", err)
	os.Exit(1)
}
