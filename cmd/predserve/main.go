// Command predserve runs the long-lived prediction service: the
// paper's predictor stack (hybrid, layered-queuing, resource-manager
// allocation) behind a concurrent HTTP/JSON API with per-(architecture,
// mix) model caching, request-coalescing batch solves and admission
// control. See internal/serve for the serving architecture.
//
// Endpoints:
//
//	GET|POST /v1/predict   response-time prediction (method=hybrid|lqn|regress)
//	GET|POST /v1/capacity  max clients under an SLA goal
//	POST     /v1/allocate  Algorithm 1 allocation plan
//	GET      /healthz      liveness
//	GET      /metrics      obs plain-text metric dump
//	GET      /debug/...    expvar + pprof
//
// On SIGTERM/SIGINT predserve drains: the HTTP server stops accepting
// and finishes in-flight requests, the batch workers answer everything
// already queued, and a final obs snapshot is flushed to stderr so the
// run leaves evidence even without a scraper.
//
// Usage:
//
//	predserve [-addr :8089] [-addr-file path] [-cache-cap 256]
//	          [-laplace-b 0] [-deadline 5s] [-report snapshot.json]
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"perfpred/internal/instrument"
	"perfpred/internal/obs"
	"perfpred/internal/serve"
	"perfpred/internal/workload"
)

func main() {
	addr := flag.String("addr", ":8089", "listen address (use 127.0.0.1:0 with -addr-file for an ephemeral port)")
	addrFile := flag.String("addr-file", "", "write the bound address to this file once listening")
	cacheCap := flag.Int("cache-cap", 256, "model cache capacity in (architecture, mix) entries; 0 = unbounded")
	points := flag.Int("points", 0, "hybrid pseudo data points per equation (0 = paper's 4)")
	laplaceB := flag.Float64("laplace-b", 0, "fixed Laplace percentile scale in seconds; 0 calibrates per key from a fixed-seed simulator run")
	calibSeconds := flag.Float64("calib-seconds", 40, "simulated seconds per percentile calibration run")
	calibSeed := flag.Int64("calib-seed", 1, "seed for the calibration runs")
	regressSamples := flag.Int("regress-samples", 8, "training measurements per (architecture, mix) for the cheap regress tier")
	regressSeconds := flag.Float64("regress-seconds", 20, "simulated seconds per regress training run")
	regressDegree := flag.Int("regress-degree", 2, "polynomial degree of the regress tier")
	buildWorkers := flag.Int("build-workers", 2, "concurrent cold model builds")
	maxQueuedBuilds := flag.Int("max-queued-builds", 8, "cold builds allowed to wait beyond the workers before 429")
	solveWorkers := flag.Int("solve-workers", 0, "batch solver workers (0 = GOMAXPROCS)")
	maxQueuedSolves := flag.Int("max-queued-solves", 256, "batch solver queue bound")
	maxBatch := flag.Int("max-batch", 64, "max solves coalesced into one warm-start sweep")
	deadline := flag.Duration("deadline", 5*time.Second, "default per-request deadline")
	retryAfter := flag.Duration("retry-after", time.Second, "Retry-After hint on 429 responses")
	report := flag.String("report", "", "write a final obs snapshot (JSON) here on shutdown")
	flag.Parse()

	reg := obs.NewRegistry()
	instrument.EnableAll(reg)

	svc, err := serve.New(serve.Config{
		Archs:                 workload.CaseStudyServers(),
		DB:                    workload.CaseStudyDB(),
		Demands:               workload.CaseStudyDemands(),
		PointsPerEquation:     *points,
		CacheCapacity:         *cacheCap,
		LaplaceB:              *laplaceB,
		CalibrationSeed:       *calibSeed,
		CalibrationSimSeconds: *calibSeconds,
		RegressTrainSamples:   *regressSamples,
		RegressSimSeconds:     *regressSeconds,
		RegressDegree:         *regressDegree,
		BuildWorkers:          *buildWorkers,
		MaxQueuedBuilds:       *maxQueuedBuilds,
		SolveWorkers:          *solveWorkers,
		MaxQueuedSolves:       *maxQueuedSolves,
		MaxBatch:              *maxBatch,
		DefaultDeadline:       *deadline,
		RetryAfter:            *retryAfter,
	})
	if err != nil {
		fatal(err)
	}

	mux := http.NewServeMux()
	mux.Handle("/v1/", svc.Handler())
	mux.Handle("/healthz", svc.Handler())
	mux.Handle("/metrics", obs.Handler(reg))
	mux.Handle("/debug/", obs.Handler(reg))

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	bound := ln.Addr().String()
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(bound), 0o644); err != nil {
			fatal(err)
		}
	}
	fmt.Fprintf(os.Stderr, "predserve: listening on %s\n", bound)

	srv := &http.Server{Handler: mux}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	select {
	case s := <-sig:
		fmt.Fprintf(os.Stderr, "predserve: %v, draining\n", s)
	case err := <-errc:
		fatal(err)
	}

	// Drain order matters: stop accepting and finish in-flight HTTP
	// requests first, then stop the batch workers (close answers
	// everything they had queued), then flush the evidence.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "predserve: shutdown: %v\n", err)
	}
	svc.Close()

	fmt.Fprintln(os.Stderr, "predserve: final metrics snapshot:")
	_ = reg.Snapshot().WriteText(os.Stderr)
	if *report != "" {
		if err := obs.WriteReport(*report, reg); err != nil {
			fatal(err)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "predserve:", err)
	os.Exit(1)
}
