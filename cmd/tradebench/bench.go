package main

import (
	"encoding/json"
	"fmt"
	"os"
	"testing"

	"perfpred/internal/trade"
	"perfpred/internal/workload"
)

// The simulator fast path is benchmarked against a fixed pre-optimisation
// reference so the snapshot carries its own evidence: the same
// figure-scale sweep (8 AppServF populations, seed 17, 60s windows,
// one worker) measured before the pooled request lifecycle and alias
// sampling landed.
var baseline = benchResult{
	Name:        "MeasureCurve/fixed/workers=1 (pre-optimisation reference)",
	NsPerOp:     293e6,
	AllocsPerOp: 1753877,
	BytesPerOp:  73191277,
}

type benchResult struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

type snapshot struct {
	Note              string        `json:"note"`
	Baseline          benchResult   `json:"baseline"`
	Benchmarks        []benchResult `json:"benchmarks"`
	SpeedupVsBaseline float64       `json:"speedup_vs_baseline"`
	AllocReductionPct float64       `json:"alloc_reduction_pct"`
}

func record(name string, fn func(b *testing.B)) benchResult {
	r := testing.Benchmark(fn)
	return benchResult{
		Name:        name,
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
	}
}

// sweepCounts mirrors the figure-2-style client grid of the in-package
// BenchmarkMeasureCurve, so the snapshot and the baseline measure the
// same work.
func sweepCounts() []int { return []int{260, 460, 650, 1050, 1300, 1560, 1890, 2210} }

func runBenchmarks(out string) {
	snap := snapshot{
		Note: "trade simulator fast path; regenerate with `make bench` (timings are machine-dependent, allocation counts are not)",
	}
	snap.Baseline = baseline

	sweep := func(opt trade.MeasureOptions) func(b *testing.B) {
		return func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := trade.MeasureCurve(workload.AppServF(), sweepCounts(), 0, opt); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	fixed := trade.MeasureOptions{Seed: 17, WarmUp: 10, Duration: 60, Workers: 1}
	adaptive := fixed
	adaptive.TargetRelErr = 0.05
	streaming := fixed
	streaming.StreamingPercentiles = true

	headline := record("MeasureCurve/fixed/workers=1", sweep(fixed))
	snap.Benchmarks = append(snap.Benchmarks,
		headline,
		record("MeasureCurve/adaptive-0.05/workers=1", sweep(adaptive)),
		record("MeasureCurve/streaming-percentiles/workers=1", sweep(streaming)),
		record("Run/closed-400-mixed", func(b *testing.B) {
			cfg := trade.Config{
				Server:   workload.AppServF(),
				DB:       workload.CaseStudyDB(),
				Demands:  workload.CaseStudyDemands(),
				Load:     workload.MixedWorkload(400, 0.25),
				Seed:     11,
				WarmUp:   10,
				Duration: 60,
			}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := trade.Run(cfg); err != nil {
					b.Fatal(err)
				}
			}
		}),
		record("TransientCurve/800-clients-10-buckets", func(b *testing.B) {
			cfg := trade.Config{
				Server:   workload.AppServF(),
				DB:       workload.CaseStudyDB(),
				Demands:  workload.CaseStudyDemands(),
				Load:     workload.TypicalWorkload(800),
				Seed:     7,
				Duration: 60,
			}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := trade.TransientCurve(cfg, 10); err != nil {
					b.Fatal(err)
				}
			}
		}),
	)

	snap.SpeedupVsBaseline = baseline.NsPerOp / headline.NsPerOp
	snap.AllocReductionPct = 100 * (1 - float64(headline.AllocsPerOp)/float64(baseline.AllocsPerOp))

	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		fatal(err)
	}
	data = append(data, '\n')
	if out == "-" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(out, data, 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s: sweep %.0f ms/op, %d allocs/op (%.1fx faster, %.1f%% fewer allocs than the reference)\n",
		out, headline.NsPerOp/1e6, headline.AllocsPerOp, snap.SpeedupVsBaseline, snap.AllocReductionPct)
}
