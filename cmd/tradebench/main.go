// Command tradebench runs the simulated Trade testbed — the
// reproduction's stand-in for WebSphere/Trade/DB2 driven by JMeter —
// and prints the measured response times, throughput and utilisations.
//
// Usage:
//
//	tradebench -server AppServF -clients 800 [-buy 0.1] [-seed 1]
//	           [-warmup 60] [-duration 240]
//	           [-cache-bytes N -session-bytes 4096]
//	           [-open-rate 100] [-detailed]
//	tradebench -servers AppServS,AppServF,AppServVF -routing leastbusy -clients 3000
//	tradebench -server AppServS -maxthroughput
//	tradebench -bench -out BENCH_trade.json
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"perfpred/internal/instrument"
	"perfpred/internal/obs"
	"perfpred/internal/trade"
	"perfpred/internal/workload"
)

func main() {
	server := flag.String("server", "AppServF", "server architecture (AppServS|AppServF|AppServVF)")
	clients := flag.Int("clients", 500, "total client population")
	buy := flag.Float64("buy", 0, "buy-client fraction (0..1)")
	seed := flag.Int64("seed", 1, "random seed (equal seeds give identical runs)")
	warmup := flag.Float64("warmup", 60, "warm-up seconds discarded before measuring")
	duration := flag.Float64("duration", 240, "measurement window, simulated seconds")
	maxX := flag.Bool("maxthroughput", false, "benchmark the server's max throughput and exit")
	cacheBytes := flag.Int64("cache-bytes", 0, "enable the session cache with this capacity (§7.2)")
	sessionBytes := flag.Float64("session-bytes", 4096, "mean session size for the cache variant")
	tier := flag.String("servers", "", "comma-separated tier of architectures (overrides -server)")
	routing := flag.String("routing", "", "tier routing: sticky|roundrobin|leastbusy")
	openRate := flag.Float64("open-rate", 0, "add an open browse stream at this rate, req/s (§8.1)")
	detailed := flag.Bool("detailed", false, "operation-level Trade workload (§3.1)")
	bench := flag.Bool("bench", false, "run the simulator benchmarks and write a JSON snapshot")
	out := flag.String("out", "BENCH_trade.json", "snapshot path for -bench (- for stdout)")
	metricsAddr := flag.String("metrics-addr", "", "serve /metrics, /debug/vars and /debug/pprof on this address")
	report := flag.String("report", "", "write a JSON metrics snapshot to this file on exit")
	flag.Parse()

	if *metricsAddr != "" || *report != "" {
		instrument.EnableAll(obs.Default)
		if *metricsAddr != "" {
			addr, err := obs.Serve(*metricsAddr, obs.Default)
			if err != nil {
				fatal(err)
			}
			fmt.Fprintf(os.Stderr, "tradebench: metrics on http://%s/metrics\n", addr)
		}
		if *report != "" {
			path := *report
			defer func() {
				if err := obs.WriteReport(path, obs.Default); err != nil {
					fatal(err)
				}
			}()
		}
	}

	if *bench {
		runBenchmarks(*out)
		return
	}

	arch, err := serverByName(*server)
	if err != nil {
		fatal(err)
	}
	opt := trade.MeasureOptions{Seed: *seed, WarmUp: *warmup, Duration: *duration}

	if *maxX {
		x, err := trade.MaxThroughput(arch, *buy, opt)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%s max throughput (buy=%.0f%%): %.1f requests/second\n", arch.Name, *buy*100, x)
		return
	}

	var load workload.Workload
	if *buy > 0 {
		load = workload.MixedWorkload(*clients, *buy)
	} else {
		load = workload.TypicalWorkload(*clients)
	}
	if *openRate > 0 {
		load = append(load, workload.Population{
			Class:       workload.ServiceClass{Name: "stream", Mix: workload.Mix{workload.Browse: 1}},
			ArrivalRate: *openRate,
		})
	}
	cfg := trade.Config{
		Server:             arch,
		DB:                 workload.CaseStudyDB(),
		Demands:            workload.CaseStudyDemands(),
		Load:               load,
		Seed:               *seed,
		WarmUp:             *warmup,
		Duration:           *duration,
		Routing:            trade.RoutingPolicy(*routing),
		DetailedOperations: *detailed,
	}
	if *tier != "" {
		for _, name := range strings.Split(*tier, ",") {
			a, err := serverByName(strings.TrimSpace(name))
			if err != nil {
				fatal(err)
			}
			cfg.Servers = append(cfg.Servers, a)
		}
	}
	if *cacheBytes > 0 {
		cfg.Cache = &trade.CacheConfig{
			SizeBytes:        *cacheBytes,
			SessionBytesMean: *sessionBytes,
			MissExtraDBCalls: 1,
		}
	}
	res, err := trade.Run(cfg)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("%s, %d clients, %.0f%% buy, %gs measured\n", arch.Name, *clients, *buy*100, *duration)
	fmt.Printf("  mean RT     %8.2f ms   (p90 %8.2f ms)\n", res.MeanRT*1000, res.OverallPercentile(90)*1000)
	fmt.Printf("  throughput  %8.2f req/s\n", res.Throughput)
	fmt.Printf("  app CPU     %8.3f      db CPU %8.3f\n", res.AppUtilization, res.DBUtilization)
	fmt.Printf("  app threads %8.2f held  queue %8.2f waiting\n", res.MeanAppSlotsHeld, res.MeanAppQueue)
	if cfg.Cache != nil {
		fmt.Printf("  cache miss  %8.3f\n", res.CacheMissRate)
	}
	names := make([]string, 0, len(res.PerClass))
	for name := range res.PerClass {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		c := res.PerClass[name]
		fmt.Printf("  class %-12s RT=%8.2fms p90=%8.2fms X=%7.2f/s n=%d\n",
			name, c.MeanRT*1000, c.Percentile(90)*1000, c.Throughput, c.Completed)
	}
	if len(res.PerServer) > 1 {
		for _, sr := range res.PerServer {
			fmt.Printf("  server %-11s U=%5.3f X=%7.2f/s n=%d\n",
				sr.Name, sr.Utilization, sr.Throughput, sr.Completed)
		}
	}
	for _, op := range res.PerOperation {
		fmt.Printf("  op %-15s RT=%8.2fms n=%d\n", op.Operation, op.MeanRT*1000, op.Completed)
	}
}

func serverByName(name string) (workload.ServerArch, error) {
	for _, s := range workload.CaseStudyServers() {
		if s.Name == name {
			return s, nil
		}
	}
	return workload.ServerArch{}, fmt.Errorf("unknown server %q", name)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tradebench:", err)
	os.Exit(1)
}
