// Command lqnbench records the analytic-solver performance baseline:
// it runs the solver micro-benchmarks programmatically and writes the
// results — ns/op, allocs/op, and the warm-vs-cold sweep iteration
// counts — to a JSON snapshot (BENCH_lqn.json at the repo root is the
// committed trajectory).
//
//	go run ./cmd/lqnbench -out BENCH_lqn.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"testing"

	"perfpred/internal/hybrid"
	"perfpred/internal/instrument"
	"perfpred/internal/lqn"
	"perfpred/internal/obs"
	"perfpred/internal/workload"
)

type benchResult struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

type sweepResult struct {
	Populations    string  `json:"populations"`
	ColdIterations int     `json:"cold_iterations"`
	WarmIterations int     `json:"warm_iterations"`
	ReductionPct   float64 `json:"reduction_pct"`
}

type snapshot struct {
	Note       string        `json:"note"`
	Benchmarks []benchResult `json:"benchmarks"`
	WarmSweep  sweepResult   `json:"warm_sweep"`
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "lqnbench:", err)
	os.Exit(1)
}

func tradeModel(clients int) *lqn.Model {
	m, err := lqn.NewTradeModel(workload.AppServF(), workload.CaseStudyDB(), workload.CaseStudyDemands(), workload.MixedWorkload(clients, 0.25))
	if err != nil {
		fatal(err)
	}
	return m
}

func run(name string, fn func(b *testing.B)) benchResult {
	r := testing.Benchmark(fn)
	return benchResult{
		Name:        name,
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
	}
}

// sweep solves the trade model over an adjacent-population grid and
// returns the summed MVA iteration counts — the quantity warm starting
// reduces.
func sweep(warm bool) int {
	m := tradeModel(50)
	s := lqn.NewSolver()
	s.WarmStart = warm
	total := 0
	for n := 50; n <= 2000; n += 50 {
		m.Classes[0].Population = n
		res, err := s.Solve(m, lqn.Options{})
		if err != nil {
			fatal(err)
		}
		total += res.Iterations
	}
	return total
}

func main() {
	out := flag.String("out", "BENCH_lqn.json", "output JSON path (- for stdout)")
	metricsAddr := flag.String("metrics-addr", "", "serve /metrics, /debug/vars and /debug/pprof on this address")
	report := flag.String("report", "", "write a JSON metrics snapshot to this file on exit")
	flag.Parse()

	if *metricsAddr != "" || *report != "" {
		instrument.EnableAll(obs.Default)
		if *metricsAddr != "" {
			addr, err := obs.Serve(*metricsAddr, obs.Default)
			if err != nil {
				fatal(err)
			}
			fmt.Fprintf(os.Stderr, "lqnbench: metrics on http://%s/metrics\n", addr)
		}
		if *report != "" {
			path := *report
			defer func() {
				if err := obs.WriteReport(path, obs.Default); err != nil {
					fatal(err)
				}
			}()
		}
	}

	snap := snapshot{
		Note: "LQN solver baseline; regenerate with `make bench` (timings are machine-dependent, allocs and iteration counts are not)",
	}

	snap.Benchmarks = append(snap.Benchmarks,
		run("Solve/one-shot", func(b *testing.B) {
			m := tradeModel(400)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := lqn.Solve(m, lqn.Options{}); err != nil {
					fatal(err)
				}
			}
		}),
		run("Solver.Solve/steady-state", func(b *testing.B) {
			m := tradeModel(400)
			s := lqn.NewSolver()
			if _, err := s.Solve(m, lqn.Options{}); err != nil {
				fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m.Classes[0].Population = 400 + 50*(i%2)
				if _, err := s.Solve(m, lqn.Options{}); err != nil {
					fatal(err)
				}
			}
		}),
		run("Solver.Solve/warm-start", func(b *testing.B) {
			m := tradeModel(400)
			s := lqn.NewSolver()
			s.WarmStart = true
			if _, err := s.Solve(m, lqn.Options{}); err != nil {
				fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m.Classes[0].Population = 400 + 50*(i%2)
				if _, err := s.Solve(m, lqn.Options{}); err != nil {
					fatal(err)
				}
			}
		}),
		run("Solver.Solve/task-layering", func(b *testing.B) {
			m := tradeModel(400)
			s := lqn.NewSolver()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := s.Solve(m, lqn.Options{TaskLayering: true}); err != nil {
					fatal(err)
				}
			}
		}),
		run("hybrid.Build/serial", func(b *testing.B) {
			cfg := hybrid.Config{DB: workload.CaseStudyDB(), Demands: workload.CaseStudyDemands(), Workers: 1}
			servers := workload.CaseStudyServers()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := hybrid.Build(cfg, servers); err != nil {
					fatal(err)
				}
			}
		}),
	)

	cold := sweep(false)
	warmed := sweep(true)
	snap.WarmSweep = sweepResult{
		Populations:    "trade multiclass, browse population 50..2000 step 50",
		ColdIterations: cold,
		WarmIterations: warmed,
		ReductionPct:   100 * (1 - float64(warmed)/float64(cold)),
	}

	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		fatal(err)
	}
	data = append(data, '\n')
	if *out == "-" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s: steady-state %d allocs/op, warm sweep %d vs cold %d iterations (%.0f%% saved)\n",
		*out, snap.Benchmarks[1].AllocsPerOp, warmed, cold, snap.WarmSweep.ReductionPct)
}
