// Command regressbench is the four-family comparison study: it brings
// up each predictor family standalone — historical (HYDRA), layered
// queuing, hybrid, and the black-box regression family — charges every
// one the calibration it actually needs, then scores all four against
// the same memoised simulated-truth oracle on the same probe grid. The
// headline table holds accuracy and start-up cost side by side: the
// regression tier answers from a handful of short seeded measurements,
// the hybrid from layered sweeps plus demand calibration, and the
// snapshot records exactly what each trade buys.
//
// Around the table the snapshot re-asserts the regression family's
// contracts: a training-set-size vs accuracy curve (how few samples
// the polynomial fit can survive on), a bit-level determinism check
// (fits at 1 worker and at all cores must produce identical weights),
// and a heterogeneous-architecture cost-performance frontier planned
// with the regression model itself — Algorithm 1 extended with $/req
// as a first-class axis, Pareto dominance re-derived independently as
// a self-check.
//
// Usage:
//
//	regressbench [-quick] [-seed 1] [-out BENCH_regress.json]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"hash/fnv"
	"math"
	"os"
	"runtime"
	"time"

	"perfpred/internal/bench"
	"perfpred/internal/lqn"
	"perfpred/internal/regress"
	"perfpred/internal/rm"
	"perfpred/internal/trade"
	"perfpred/internal/workload"
)

// familyRow is one predictor family's line of the headline table.
type familyRow struct {
	Name string `json:"name"`
	// Accuracy against the shared truth oracle over the probe grid.
	MeanRTErrPct  float64 `json:"mean_rt_err_pct"`
	MaxRTErrPct   float64 `json:"max_rt_err_pct"`
	MeanCapErrPct float64 `json:"mean_cap_err_pct"`
	MaxCapErrPct  float64 `json:"max_cap_err_pct"`
	RTProbes      int     `json:"rt_probes"`
	CapProbes     int     `json:"cap_probes"`
	// Start-up cost: simulated testbed seconds the family consumed
	// before it could answer its first query, and the wall-clock cost
	// of the whole standalone bring-up on this machine.
	StartupSimSeconds  float64 `json:"startup_sim_seconds"`
	StartupWallSeconds float64 `json:"startup_wall_seconds"`
}

// curvePoint is one training-set size of the accuracy curve.
type curvePoint struct {
	SamplesPerMix int     `json:"samples_per_mix"`
	TrainSamples  int     `json:"train_samples"`
	SimSeconds    float64 `json:"sim_seconds"`
	MeanRTErrPct  float64 `json:"mean_rt_err_pct"`
	MaxRTErrPct   float64 `json:"max_rt_err_pct"`
}

// determinismCheck records the worker-count fit-reproducibility gate.
type determinismCheck struct {
	WorkerCounts []int  `json:"worker_counts"`
	Fingerprint  string `json:"fingerprint"`
	Pass         bool   `json:"pass"`
}

// frontierRow is one architecture mix of the cost-performance table.
type frontierRow struct {
	Counts           []int   `json:"counts"`
	Servers          int     `json:"servers"`
	Capacity         int     `json:"capacity"`
	HourlyCost       float64 `json:"hourly_cost"`
	ThroughputPerSec float64 `json:"throughput_per_s"`
	CostPerMReq      float64 `json:"cost_per_mreq"`
	Frontier         bool    `json:"frontier"`
}

type snapshot struct {
	Note        string           `json:"note"`
	Cores       int              `json:"cores"`
	Seed        int64            `json:"seed"`
	Quick       bool             `json:"quick,omitempty"`
	Families    []familyRow      `json:"families"`
	Curve       []curvePoint     `json:"training_curve"`
	Determinism determinismCheck `json:"determinism"`
	FrontierOpt struct {
		MaxServers  int       `json:"max_servers"`
		MaxPerArch  int       `json:"max_per_arch"`
		HourlyCosts []float64 `json:"hourly_costs"`
	} `json:"frontier_options"`
	Frontier    []frontierRow `json:"frontier"`
	WallSeconds float64       `json:"wall_seconds"`
	AllPass     bool          `json:"all_pass"`
	FailReasons []string      `json:"fail_reasons,omitempty"`
}

func main() {
	quick := flag.Bool("quick", false, "smoke mode: shorter runs, coarser checks")
	seed := flag.Int64("seed", 1, "seed for calibration, training and truth runs")
	out := flag.String("out", "BENCH_regress.json", "snapshot path ('-' for stdout)")
	flag.Parse()

	start := time.Now()
	snap := &snapshot{
		Note: "Four-family predictor comparison: historical (HYDRA), layered-queuing, hybrid and black-box " +
			"regression scored against one memoised simulated-truth oracle on a shared probe grid, with " +
			"standalone start-up costs (simulated seconds and wall clock), a training-set-size vs accuracy " +
			"curve, a worker-count fit-determinism fingerprint, and a regression-planned " +
			"heterogeneous-architecture cost-performance frontier ($/req axis).",
		Cores: runtime.NumCPU(),
		Seed:  *seed,
		Quick: *quick,
	}
	fail := func(format string, args ...any) {
		snap.FailReasons = append(snap.FailReasons, fmt.Sprintf(format, args...))
	}

	// Measurement horizons: the calibration suites use their defaults
	// (30 s warm-up, 120 s window); the regression tier trains on
	// deliberately short runs — its cheapness is the point under test.
	calWarm, calDur := 30.0, 120.0
	regWarm, regDur := 10.0, 40.0
	samplesPerMix := 8
	if *quick {
		calWarm, calDur = 10.0, 40.0
		regWarm, regDur = 2.0, 8.0
	}
	perCalRun := calWarm + calDur
	archs := workload.CaseStudyServers()

	// --- Phase 1: standalone family bring-up -------------------------
	// Each family gets its own suite so wall clock and simulated
	// seconds are what that family alone would pay, with nothing
	// amortised across families. Simulated seconds are exact run
	// counts: HYDRA needs 13 measurements (3 max-throughput benchmarks,
	// 2 gradient points, 4 curve points for each established server);
	// LQN and hybrid both need the 2 single-type demand calibrations.
	fmt.Fprintln(os.Stderr, "regressbench: bringing up four predictor families standalone...")

	t0 := time.Now()
	hydraSuite := newSuite(*seed, calWarm, calDur)
	hydraSet := rm.ModelSet{}
	for _, a := range archs {
		m, err := hydraSuite.HistModelFor(a)
		if err != nil {
			fatal("historical calibration: %v", err)
		}
		hydraSet[a.Name] = m
	}
	hydraWall := time.Since(t0).Seconds()

	t0 = time.Now()
	lqnSuite := newSuite(*seed, calWarm, calDur)
	demands, err := lqnSuite.LQNDemands()
	if err != nil {
		fatal("LQN demand calibration: %v", err)
	}
	lqnPred, err := rm.NewLQNPredictor(archs, workload.CaseStudyDB(), demands,
		workload.BrowseClass(0), lqn.Options{Convergence: 1e-6})
	if err != nil {
		fatal("LQN predictor: %v", err)
	}
	lqnWall := time.Since(t0).Seconds()

	t0 = time.Now()
	hybridSuite := newSuite(*seed, calWarm, calDur)
	hybridM, err := hybridSuite.Hybrid()
	if err != nil {
		fatal("hybrid build: %v", err)
	}
	hybridWall := time.Since(t0).Seconds()

	t0 = time.Now()
	regressM, err := regress.Train(regress.TrainConfig{
		Archs:         archs,
		SamplesPerMix: samplesPerMix,
		Seed:          *seed,
		Opt:           trade.MeasureOptions{WarmUp: regWarm, Duration: regDur},
		Fit:           regress.FitConfig{Degree: 3},
	})
	if err != nil {
		fatal("regression training: %v", err)
	}
	regressWall := time.Since(t0).Seconds()

	families := []rm.EvalFamily{
		{Name: "hydra", Pred: hydraSet, StartupSimSeconds: 13 * perCalRun, StartupWallSeconds: hydraWall},
		{Name: "lqn", Pred: lqnPred, StartupSimSeconds: 2 * perCalRun, StartupWallSeconds: lqnWall},
		{Name: "hybrid", Pred: hybridM, StartupSimSeconds: 2 * perCalRun, StartupWallSeconds: hybridWall},
		{Name: "regress", Pred: regressM, StartupSimSeconds: regressM.Stats.SimSeconds, StartupWallSeconds: regressWall},
	}

	// --- Phase 2: shared-truth accuracy table ------------------------
	fmt.Fprintln(os.Stderr, "regressbench: scoring all families against the truth oracle...")
	truth := rm.NewSimOracle(archs, trade.MeasureOptions{Seed: *seed, WarmUp: calWarm, Duration: calDur})
	scenarios := probeGrid(archs, *quick)
	scores, err := rm.PredictorEval(families, truth, scenarios)
	if err != nil {
		fatal("predictor eval: %v", err)
	}
	for _, s := range scores {
		snap.Families = append(snap.Families, familyRow{
			Name:               s.Name,
			MeanRTErrPct:       round2(s.MeanAbsRTErrPct),
			MaxRTErrPct:        round2(s.MaxAbsRTErrPct),
			MeanCapErrPct:      round2(s.MeanAbsCapErrPct),
			MaxCapErrPct:       round2(s.MaxAbsCapErrPct),
			RTProbes:           s.RTProbes,
			CapProbes:          s.CapProbes,
			StartupSimSeconds:  s.StartupSimSeconds,
			StartupWallSeconds: round2(s.StartupWallSeconds),
		})
		if s.RTProbes == 0 || s.CapProbes == 0 {
			fail("family %s scored no probes", s.Name)
		}
		if !isFinite(s.MeanAbsRTErrPct) || !isFinite(s.MeanAbsCapErrPct) {
			fail("family %s produced non-finite error", s.Name)
		}
	}
	if len(scores) != 4 {
		fail("expected 4 families in the table, got %d", len(scores))
	}
	// The probe grid includes populations just below the saturation
	// knee, where relative response-time error is brutal for every
	// family (the model-based families also land in the hundreds of
	// percent at their worst probe); the gate bounds the mean so a
	// broken fit fails loudly without freezing the honest knee error.
	errBound := 100.0
	if *quick {
		errBound = 120.0
	}
	for _, s := range scores {
		if s.Name == "regress" {
			if s.MeanAbsRTErrPct > errBound {
				fail("regression mean RT error %.1f%% exceeds %.0f%%", s.MeanAbsRTErrPct, errBound)
			}
			if s.StartupSimSeconds >= 13*perCalRun {
				fail("regression start-up (%.0f sim-s) is not cheaper than HYDRA's (%.0f sim-s)",
					s.StartupSimSeconds, 13*perCalRun)
			}
		}
	}

	// --- Phase 3: training-set-size vs accuracy curve ----------------
	fmt.Fprintln(os.Stderr, "regressbench: training-set-size vs accuracy curve...")
	sizes := []int{8, 10, 13, 16}
	if *quick {
		sizes = []int{8, 11}
	}
	for _, sz := range sizes {
		m, err := regress.Train(regress.TrainConfig{
			Archs:         archs,
			SamplesPerMix: sz,
			Seed:          *seed,
			Opt:           trade.MeasureOptions{WarmUp: regWarm, Duration: regDur},
			Fit:           regress.FitConfig{Degree: 3},
		})
		if err != nil {
			fatal("training at %d samples/mix: %v", sz, err)
		}
		pt, err := rm.PredictorEval([]rm.EvalFamily{{Name: "regress", Pred: m}}, truth, rtOnly(scenarios))
		if err != nil {
			fatal("curve eval at %d samples/mix: %v", sz, err)
		}
		snap.Curve = append(snap.Curve, curvePoint{
			SamplesPerMix: sz,
			TrainSamples:  m.Stats.Samples,
			SimSeconds:    m.Stats.SimSeconds,
			MeanRTErrPct:  round2(pt[0].MeanAbsRTErrPct),
			MaxRTErrPct:   round2(pt[0].MaxAbsRTErrPct),
		})
		if !isFinite(pt[0].MeanAbsRTErrPct) {
			fail("curve point at %d samples/mix produced non-finite error", sz)
		}
	}

	// --- Phase 4: worker-count fit determinism -----------------------
	fmt.Fprintln(os.Stderr, "regressbench: worker-count determinism check...")
	snap.Determinism = checkDeterminism(archs, *seed, samplesPerMix, regWarm, regDur, fail)

	// --- Phase 5: regression-planned cost frontier -------------------
	fmt.Fprintln(os.Stderr, "regressbench: heterogeneous cost-performance frontier...")
	maxServers, maxPer := 6, 3
	if *quick {
		maxServers, maxPer = 4, 2
	}
	costs := []float64{0.08, 0.17, 0.35}
	snap.FrontierOpt.MaxServers = maxServers
	snap.FrontierOpt.MaxPerArch = maxPer
	snap.FrontierOpt.HourlyCosts = costs
	prices := []rm.ArchPrice{
		{Arch: workload.AppServS(), HourlyCost: costs[0], Max: maxPer},
		{Arch: workload.AppServF(), HourlyCost: costs[1], Max: maxPer},
		{Arch: workload.AppServVF(), HourlyCost: costs[2], Max: maxPer},
	}
	points, err := rm.CostFrontier(prices, regressM, workload.ThinkTimeMean,
		rm.FrontierOptions{MaxServers: maxServers})
	if err != nil {
		fatal("cost frontier: %v", err)
	}
	frontierN := 0
	for _, p := range points {
		snap.Frontier = append(snap.Frontier, frontierRow{
			Counts:           p.Counts,
			Servers:          p.Servers,
			Capacity:         p.Capacity,
			HourlyCost:       round2(p.HourlyCost),
			ThroughputPerSec: round2(p.ThroughputPerSec),
			CostPerMReq:      round2(p.CostPerMReq),
			Frontier:         !p.Dominated,
		})
		if !p.Dominated {
			frontierN++
		}
		if p.Capacity > 0 && p.CostPerMReq <= 0 {
			fail("mix %v holds %d clients but prices at %.3f $/Mreq", p.Counts, p.Capacity, p.CostPerMReq)
		}
	}
	if frontierN == 0 {
		fail("frontier is empty — every mix dominated")
	}
	if frontierN == len(points) && len(points) > 3 {
		fail("no mix dominated — dominance marking suspect over %d points", len(points))
	}
	// Independent re-derivation of the dominance verdicts.
	for i, p := range points {
		dom := false
		for j, q := range points {
			if i == j {
				continue
			}
			if q.Capacity >= p.Capacity && q.HourlyCost <= p.HourlyCost &&
				(q.Capacity > p.Capacity || q.HourlyCost < p.HourlyCost) {
				dom = true
				break
			}
		}
		if dom != p.Dominated {
			fail("mix %v dominance verdict %v disagrees with re-derivation %v", p.Counts, p.Dominated, dom)
		}
	}

	snap.WallSeconds = round2(time.Since(start).Seconds())
	snap.AllPass = len(snap.FailReasons) == 0
	writeSnapshot(snap, *out)
	if !snap.AllPass {
		fmt.Fprintf(os.Stderr, "regressbench: FAILED: %v\n", snap.FailReasons)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "regressbench: all checks passed in %.1fs\n", snap.WallSeconds)
}

// newSuite builds a bench suite with this study's measurement horizon.
func newSuite(seed int64, warm, dur float64) *bench.Suite {
	s := bench.NewSuite(seed)
	s.Opt.WarmUp, s.Opt.Duration = warm, dur
	return s
}

// probeGrid lays out the shared probe set: populations as fractions of
// each architecture's saturation knee (Xmax × Z), capacities at fixed
// SLA goals.
func probeGrid(archs []workload.ServerArch, quick bool) []rm.EvalScenario {
	fracs := []float64{0.3, 0.6, 0.9, 1.2}
	goals := []float64{0.5, 1.5}
	if quick {
		fracs = []float64{0.5, 1.1}
		goals = []float64{1.0}
	}
	var scenarios []rm.EvalScenario
	for _, a := range archs {
		sat := a.MaxThroughputTypical * workload.ThinkTimeMean
		sc := rm.EvalScenario{Arch: a.Name, GoalRTs: goals}
		for _, f := range fracs {
			sc.Pops = append(sc.Pops, int(f*sat))
		}
		scenarios = append(scenarios, sc)
	}
	return scenarios
}

// rtOnly strips capacity probes: the curve study measures fit accuracy
// only, so it skips the (expensive) capacity searches.
func rtOnly(scenarios []rm.EvalScenario) []rm.EvalScenario {
	out := make([]rm.EvalScenario, len(scenarios))
	for i, sc := range scenarios {
		out[i] = rm.EvalScenario{Arch: sc.Arch, Pops: sc.Pops}
	}
	return out
}

// checkDeterminism trains the same config at 1 worker and at all cores
// and demands bit-identical fitted weights, fingerprinting the serial
// fit for the snapshot.
func checkDeterminism(archs []workload.ServerArch, seed int64, samples int, warm, dur float64, fail func(string, ...any)) determinismCheck {
	// Force a genuinely concurrent fan-out even on a single-core box:
	// the contract is "any worker count", not "all cores".
	par := runtime.NumCPU()
	if par < 4 {
		par = 4
	}
	chk := determinismCheck{WorkerCounts: []int{1, par}, Pass: true}
	cfg := regress.TrainConfig{
		Archs:         archs,
		SamplesPerMix: samples,
		Seed:          seed,
		Opt:           trade.MeasureOptions{WarmUp: warm, Duration: dur},
		Fit:           regress.FitConfig{Degree: 3},
	}
	models := make([]*regress.Model, len(chk.WorkerCounts))
	for i, w := range chk.WorkerCounts {
		c := cfg
		c.Opt.Workers = w
		m, err := regress.Train(c)
		if err != nil {
			fail("determinism training at %d workers: %v", w, err)
			chk.Pass = false
			return chk
		}
		models[i] = m
	}
	h := fnv.New64a()
	for _, a := range archs {
		ref := models[0].Weights(a.Name)
		for _, b := range ref {
			var buf [8]byte
			bits := math.Float64bits(b)
			for k := 0; k < 8; k++ {
				buf[k] = byte(bits >> (8 * k))
			}
			h.Write(buf[:])
		}
		for i := 1; i < len(models); i++ {
			w := models[i].Weights(a.Name)
			if len(w) != len(ref) {
				fail("arch %s: %d weights at %d workers vs %d serial", a.Name, len(w), chk.WorkerCounts[i], len(ref))
				chk.Pass = false
				continue
			}
			for k := range w {
				if w[k] != ref[k] {
					fail("arch %s weight %d differs at %d workers: %v vs %v",
						a.Name, k, chk.WorkerCounts[i], w[k], ref[k])
					chk.Pass = false
				}
			}
		}
	}
	chk.Fingerprint = fmt.Sprintf("%016x", h.Sum64())
	return chk
}

func round2(v float64) float64 { return math.Round(v*100) / 100 }

func isFinite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }

func writeSnapshot(snap *snapshot, out string) {
	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		fatal("encoding snapshot: %v", err)
	}
	data = append(data, '\n')
	if out == "-" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(out, data, 0o644); err != nil {
		fatal("writing snapshot: %v", err)
	}
	fmt.Fprintf(os.Stderr, "regressbench: wrote %s\n", out)
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "regressbench: "+format+"\n", args...)
	os.Exit(1)
}
