// Command scenariobench is the transient-error study: it drives the
// declarative scenario subsystem (internal/scenario) through the
// simulated testbed and scores the paper's three predictors —
// historical (HYDRA), layered queuing and hybrid — window by window
// against simulated truth under load none of them was built for: a
// flash-sale spike that ramps the arrival rate through and past
// saturation.
//
// The steady-state methods see only each window's mean offered rate;
// the simulator sees the full time-varying process, including the
// backlog carried between windows. The per-window error table
// quantifies exactly what the steady-state assumption costs during
// ramps, overload and drain — and verifies that in genuinely steady
// windows the predictors recover their published accuracy.
//
// The snapshot also re-asserts the subsystem's contracts end to end:
// a constant-rate spec must reproduce the legacy simulator's numbers
// bit for bit, fixed-seed spec-driven fleet runs must be identical at
// 1, 2 and 4 shards, and generated MMPP/diurnal traffic must pass the
// burstiness self-check against its own spec.
//
// Usage:
//
//	scenariobench [-quick] [-seed 17] [-window 30] [-out BENCH_scenario.json]
//	              [-flash examples/scenarios/flashsale.json]
//	              [-diurnal examples/scenarios/diurnal.json]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"runtime"
	"time"

	"perfpred/internal/bench"
	"perfpred/internal/hist"
	"perfpred/internal/hybrid"
	"perfpred/internal/scenario"
	"perfpred/internal/trade"
	"perfpred/internal/workload"
)

// predCell is one predictor's verdict for one window.
type predCell struct {
	// RTMillis is the predicted mean response time; 0 when saturated.
	RTMillis float64 `json:"rt_ms"`
	// ErrPct is the relative error against the window's simulated
	// truth, percent; 0 when saturated or the window saw no traffic.
	ErrPct float64 `json:"err_pct"`
	// Saturated marks windows whose offered rate the model has no
	// steady state for (fixed point diverged / solver refused).
	Saturated bool `json:"saturated,omitempty"`
}

// windowRow is one window of the transient table.
type windowRow struct {
	Start       float64  `json:"start_s"`
	End         float64  `json:"end_s"`
	OfferedRate float64  `json:"offered_rate_per_s"`
	Completed   int      `json:"completed"`
	TruthRTMs   float64  `json:"truth_rt_ms"`
	TruthX      float64  `json:"truth_throughput_per_s"`
	Hydra       predCell `json:"hydra"`
	LQN         predCell `json:"lqn"`
	Hybrid      predCell `json:"hybrid"`
}

type steadyCheck struct {
	Clients      int     `json:"clients"`
	TruthRTMs    float64 `json:"truth_rt_ms"`
	HydraErrPct  float64 `json:"hydra_err_pct"`
	LQNErrPct    float64 `json:"lqn_err_pct"`
	HybridErrPct float64 `json:"hybrid_err_pct"`
	TolerancePct float64 `json:"tolerance_pct"`
	// LegacyExact reports that the constant scenario reproduced the
	// legacy Load-configured run bit for bit.
	LegacyExact bool `json:"legacy_exact"`
	Pass        bool `json:"pass"`
}

type determinismCheck struct {
	Pools       int    `json:"pools"`
	ShardCounts []int  `json:"shard_counts"`
	Fingerprint string `json:"fingerprint"`
	Pass        bool   `json:"pass"`
}

type snapshot struct {
	Note        string                 `json:"note"`
	Cores       int                    `json:"cores"`
	Seed        int64                  `json:"seed"`
	Quick       bool                   `json:"quick,omitempty"`
	Scenario    string                 `json:"scenario"`
	WindowSecs  float64                `json:"window_s"`
	Windows     []windowRow            `json:"windows"`
	Steady      steadyCheck            `json:"steady"`
	Determinism determinismCheck       `json:"determinism"`
	SelfCheck   []scenario.BurstReport `json:"self_check"`
	WallSeconds float64                `json:"wall_seconds"`
	AllPass     bool                   `json:"all_pass"`
	FailReasons []string               `json:"fail_reasons,omitempty"`
}

func main() {
	quick := flag.Bool("quick", false, "smoke mode: shorter runs, coarser checks")
	seed := flag.Int64("seed", 17, "seed for calibration and scenario runs")
	window := flag.Float64("window", 30, "transient window width, seconds")
	out := flag.String("out", "BENCH_scenario.json", "snapshot path ('-' for stdout)")
	flashPath := flag.String("flash", "examples/scenarios/flashsale.json", "flash-sale spec file")
	diurnalPath := flag.String("diurnal", "examples/scenarios/diurnal.json", "diurnal spec file for the burstiness self-check")
	flag.Parse()

	start := time.Now()
	snap := &snapshot{
		Note: "Declarative-scenario transient-error study: per-window prediction error of the historical (HYDRA), " +
			"layered-queuing and hybrid methods against simulated truth across a flash-sale spike, with a " +
			"steady-window consistency check against the predictors' published regime, a 1/2/4-shard determinism " +
			"fingerprint of a spec-driven fleet, and generated-traffic burstiness self-checks.",
		Cores:      runtime.NumCPU(),
		Seed:       *seed,
		Quick:      *quick,
		WindowSecs: *window,
	}
	fail := func(format string, args ...any) {
		snap.FailReasons = append(snap.FailReasons, fmt.Sprintf(format, args...))
	}

	arch := workload.AppServF()
	suite := bench.NewSuite(*seed)
	if *quick {
		suite.Opt.WarmUp, suite.Opt.Duration = 10, 40
	}
	fmt.Fprintln(os.Stderr, "scenariobench: calibrating predictors (historical, LQN, hybrid)...")
	histM, err := suite.HistModel(arch)
	if err != nil {
		fatal("historical calibration: %v", err)
	}
	hybridM, err := suite.Hybrid()
	if err != nil {
		fatal("hybrid build: %v", err)
	}

	// --- Phase 1: flash-sale transient table -------------------------
	flash, err := scenario.Load(*flashPath)
	if err != nil {
		fatal("loading flash spec: %v", err)
	}
	snap.Scenario = flash.Name
	duration := 420.0
	if *quick {
		duration = 300
	}
	fmt.Fprintf(os.Stderr, "scenariobench: simulating %s over %.0fs...\n", flash.Name, duration)
	cfg := trade.Config{
		Server:   arch,
		DB:       workload.CaseStudyDB(),
		Demands:  workload.CaseStudyDemands(),
		Scenario: flash,
		Seed:     *seed,
		Duration: duration,
	}
	points, err := trade.Windows(cfg, *window)
	if err != nil {
		fatal("windowed run: %v", err)
	}
	sawSaturated := false
	for _, p := range points {
		row := windowRow{
			Start:       p.Start,
			End:         p.End,
			OfferedRate: flash.MeanOfferedRate(p.Start, p.End),
			Completed:   p.Completed,
			TruthRTMs:   1000 * p.MeanRT,
			TruthX:      p.Throughput,
		}
		row.Hydra = predictFixedPoint(row.OfferedRate, p.MeanRT, histM.Predict)
		row.Hybrid = predictFixedPoint(row.OfferedRate, p.MeanRT, func(n float64) float64 {
			rt, err := hybridM.Predict(arch.Name, n)
			if err != nil {
				return math.NaN()
			}
			return rt
		})
		row.LQN = predictLQN(suite, arch, flash, row.OfferedRate, p.MeanRT)
		if row.Hydra.Saturated || row.LQN.Saturated || row.Hybrid.Saturated {
			sawSaturated = true
		}
		snap.Windows = append(snap.Windows, row)
	}
	if len(snap.Windows) < 3 {
		fail("transient table has only %d windows", len(snap.Windows))
	} else {
		basePeakSanity(snap, fail)
	}
	if !sawSaturated {
		fail("flash peak never saturated any predictor — the spike is not stressing the models")
	}

	// --- Phase 2: steady-window consistency --------------------------
	fmt.Fprintln(os.Stderr, "scenariobench: steady-window consistency check...")
	snap.Steady = steadyConsistency(suite, arch, histM, hybridM, *seed, *quick, fail)

	// --- Phase 3: shard-determinism fingerprint ----------------------
	fmt.Fprintln(os.Stderr, "scenariobench: 1/2/4-shard determinism fingerprint...")
	snap.Determinism = shardDeterminism(*seed, *quick, fail)

	// --- Phase 4: burstiness self-check ------------------------------
	fmt.Fprintln(os.Stderr, "scenariobench: generated-traffic burstiness self-check...")
	diurnal, err := scenario.Load(*diurnalPath)
	if err != nil {
		fatal("loading diurnal spec: %v", err)
	}
	horizon := 5000.0
	if *quick {
		horizon = 1500
	}
	snap.SelfCheck = scenario.SelfCheck(diurnal, *seed, horizon)
	for _, r := range snap.SelfCheck {
		if !r.OK {
			fail("self-check %s (%s): %s", r.Cohort, r.Kind, r.Reason)
		}
	}

	snap.WallSeconds = time.Since(start).Seconds()
	snap.AllPass = len(snap.FailReasons) == 0
	writeSnapshot(snap, *out)
	if !snap.AllPass {
		fmt.Fprintf(os.Stderr, "scenariobench: FAILED: %v\n", snap.FailReasons)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "scenariobench: all checks passed in %.1fs\n", snap.WallSeconds)
}

// predictFixedPoint maps an offered rate onto a clients→RT model.
// The historical and hybrid curves are calibrated on closed clients
// cycling with think time Z, so by the interactive response-time law
// a population N delivers throughput N/(R(N)+Z); the closed
// population equivalent to an offered rate λ is the fixed point
// N = λ·(R(N)+Z). Divergence (λ above the curve's saturation
// throughput) means the model has no steady state at that rate — the
// window is saturated for this predictor.
func predictFixedPoint(lambda, truth float64, rt func(float64) float64) predCell {
	const think = workload.ThinkTimeMean
	if lambda <= 0 {
		return predCell{}
	}
	n := 0.0
	for i := 0; i < 500; i++ {
		r := rt(n)
		if math.IsNaN(r) || r <= 0 {
			return predCell{Saturated: true}
		}
		next := lambda * (r + think)
		if next > 1e7 {
			return predCell{Saturated: true}
		}
		if math.Abs(next-n) < 1e-9*(1+n) {
			n = next
			break
		}
		n = 0.5*n + 0.5*next // damped iteration
	}
	pred := rt(n)
	if math.IsNaN(pred) || pred <= 0 {
		return predCell{Saturated: true}
	}
	return predCell{RTMillis: 1000 * pred, ErrPct: errPct(pred, truth)}
}

// predictLQN solves the layered model with the window's offered rate
// as an open class carrying the scenario's request mix. A solver
// error or non-convergence marks the window saturated.
func predictLQN(suite *bench.Suite, arch workload.ServerArch, sc *scenario.Compiled, lambda, truth float64) predCell {
	if lambda <= 0 {
		return predCell{}
	}
	// The flash scenario has one open cohort; its class carries the mix.
	class := sc.Cohorts[0].Class
	class.ThinkTimeMean = 0
	res, err := suite.LQNPredict(arch, workload.OpenWorkload(class, lambda))
	if err != nil || !res.Converged {
		return predCell{Saturated: true}
	}
	pred := res.MeanResponseTime()
	if pred <= 0 {
		return predCell{Saturated: true}
	}
	return predCell{RTMillis: 1000 * pred, ErrPct: errPct(pred, truth)}
}

func errPct(pred, truth float64) float64 {
	if truth <= 0 {
		return 0
	}
	return 100 * (pred - truth) / truth
}

// basePeakSanity asserts the simulated truth actually shows the
// transient the spec declares: the hold window must carry more
// traffic and a worse response time than the pre-flash baseline.
func basePeakSanity(snap *snapshot, fail func(string, ...any)) {
	var base, peak *windowRow
	for i := range snap.Windows {
		w := &snap.Windows[i]
		if base == nil || (w.End <= 120 && w.OfferedRate <= base.OfferedRate) {
			if w.End <= 120 {
				base = w
			}
		}
		if peak == nil || w.OfferedRate > peak.OfferedRate {
			peak = w
		}
	}
	if base == nil || peak == nil {
		fail("could not locate baseline/peak windows")
		return
	}
	if peak.TruthX <= base.TruthX {
		fail("peak window throughput %.1f/s not above baseline %.1f/s", peak.TruthX, base.TruthX)
	}
	if peak.TruthRTMs <= base.TruthRTMs {
		fail("peak window truth RT %.2fms not above baseline %.2fms", peak.TruthRTMs, base.TruthRTMs)
	}
}

// steadyConsistency pins the subsystem to the predictors' home
// ground: a constant closed-cohort spec must (a) reproduce the
// legacy Load-configured run bit for bit and (b) land every
// predictor within tolerance of simulated truth, exactly as the
// steady-state experiments do.
func steadyConsistency(suite *bench.Suite, arch workload.ServerArch, histM *hist.ServerModel, hybridM *hybrid.Model, seed int64, quick bool, fail func(string, ...any)) steadyCheck {
	clients := 900
	tol := 25.0
	if quick {
		// Quick mode calibrates the predictors on short runs; allow
		// the extra calibration noise.
		tol = 45
	}
	sc, err := scenario.New("steady").
		AddClosed("browse", clients, scenario.Exponential(workload.ThinkTimeMean), map[string]float64{"browse": 1}).
		Compile("")
	if err != nil {
		fatal("steady spec: %v", err)
	}
	cfg := trade.Config{
		Server:   arch,
		DB:       workload.CaseStudyDB(),
		Demands:  workload.CaseStudyDemands(),
		Scenario: sc,
		Seed:     seed,
		WarmUp:   suite.Opt.WarmUp,
		Duration: suite.Opt.Duration,
	}
	truthRes, err := trade.Run(cfg)
	if err != nil {
		fatal("steady scenario run: %v", err)
	}
	legacy := cfg
	legacy.Scenario = nil
	legacy.Load = workload.TypicalWorkload(clients)
	legacyRes, err := trade.Run(legacy)
	if err != nil {
		fatal("steady legacy run: %v", err)
	}
	out := steadyCheck{
		Clients:      clients,
		TruthRTMs:    1000 * truthRes.MeanRT,
		TolerancePct: tol,
		LegacyExact:  truthRes.MeanRT == legacyRes.MeanRT && truthRes.Throughput == legacyRes.Throughput && truthRes.EventsFired == legacyRes.EventsFired,
	}
	if !out.LegacyExact {
		fail("constant scenario diverged from legacy run: meanRT %v vs %v, events %d vs %d",
			truthRes.MeanRT, legacyRes.MeanRT, truthRes.EventsFired, legacyRes.EventsFired)
	}
	truth := truthRes.MeanRT
	out.HydraErrPct = errPct(histM.Predict(float64(clients)), truth)
	if hy, err := hybridM.Predict(arch.Name, float64(clients)); err == nil {
		out.HybridErrPct = errPct(hy, truth)
	} else {
		fail("hybrid steady predict: %v", err)
	}
	if res, err := suite.LQNPredict(arch, workload.TypicalWorkload(clients)); err == nil {
		out.LQNErrPct = errPct(res.MeanResponseTime(), truth)
	} else {
		fail("lqn steady predict: %v", err)
	}
	out.Pass = math.Abs(out.HydraErrPct) <= tol && math.Abs(out.LQNErrPct) <= tol && math.Abs(out.HybridErrPct) <= tol
	if !out.Pass {
		fail("steady-window predictor errors exceed %.0f%%: hydra %.1f%%, lqn %.1f%%, hybrid %.1f%%",
			tol, out.HydraErrPct, out.LQNErrPct, out.HybridErrPct)
	}
	return out
}

// shardDeterminism runs one spec-driven fleet (closed lognormal
// cohort + diurnal Poisson + MMPP) at 1, 2 and 4 shards and demands
// identical per-class statistics and event counts.
func shardDeterminism(seed int64, quick bool, fail func(string, ...any)) determinismCheck {
	sc, err := scenario.New("determinism").
		AddClosed("shoppers", 120, scenario.Lognormal(workload.ThinkTimeMean, 1.5), map[string]float64{"browse": 0.75, "buy": 0.25}).
		AddPoisson("portal", 20, map[string]float64{"browse": 1}).
		Pattern(scenario.Diurnal(60, 0.5, 0)).
		AddMMPP("spikes", []scenario.MMPPStateSpec{{Rate: 2, MeanDwell: 20}, {Rate: 30, MeanDwell: 4}}, map[string]float64{"buy": 1}).
		Compile("")
	if err != nil {
		fatal("determinism spec: %v", err)
	}
	duration := 60.0
	if quick {
		duration = 20
	}
	out := determinismCheck{Pools: 4, ShardCounts: []int{1, 2, 4}, Pass: true}
	var ref string
	for _, shards := range out.ShardCounts {
		cfg := trade.Config{
			Server:       workload.AppServF(),
			DB:           workload.CaseStudyDB(),
			Demands:      workload.CaseStudyDemands(),
			Scenario:     sc,
			Seed:         seed,
			WarmUp:       10,
			Duration:     duration,
			MaxRTSamples: 64,
			Pools:        4,
			Shards:       shards,
		}
		res, err := trade.Run(cfg)
		if err != nil {
			fatal("determinism run (shards=%d): %v", shards, err)
		}
		fp := fmt.Sprintf("events=%d", res.EventsFired)
		for _, name := range []string{"portal", "shoppers", "spikes"} {
			cr := res.PerClass[name]
			fp += fmt.Sprintf(" %s:%d:%.17g:%.17g", name, cr.Completed, cr.MeanRT, cr.RTStdDev)
		}
		if ref == "" {
			ref = fp
			out.Fingerprint = fp
			continue
		}
		if fp != ref {
			out.Pass = false
			fail("shard determinism broken at %d shards:\n  ref %s\n  got %s", shards, ref, fp)
		}
	}
	return out
}

func writeSnapshot(snap *snapshot, out string) {
	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		fatal("encoding snapshot: %v", err)
	}
	data = append(data, '\n')
	if out == "-" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(out, data, 0o644); err != nil {
		fatal("writing snapshot: %v", err)
	}
	fmt.Fprintf(os.Stderr, "scenariobench: wrote %s\n", out)
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "scenariobench: "+format+"\n", args...)
	os.Exit(1)
}
