// Command predload turns the prediction service on itself: it drives
// internal/serve with trade-simulator-derived request streams and
// snapshots the serving evidence to BENCH_serve.json, the way
// BENCH_lqn/BENCH_trade/BENCH_sim track the other hot paths.
//
// Four phases, each answering one acceptance question:
//
//   - cold vs warm: what does a cold hybrid build (layered sweep +
//     fixed-seed percentile calibration) cost, and how much faster is
//     a warm-cache prediction? (target: warm p99 ≥ 50× faster)
//   - coalesced burst: does a concurrent adjacent-population burst of
//     exact layered queries, coalesced into warm-start sweeps by the
//     batcher, beat the same solves done independently and cold?
//   - sustained: closed-loop throughput and latency under a mixed
//     request stream whose populations and SLA goals are derived from
//     fixed-seed trade-simulator runs (target: ≥ 12 predictions/sec,
//     the million-predictions/day regime, with p99 reported)
//   - overload: at ≥ 10× the cold-build capacity the service must
//     shed with 429s while accepted-request p99 stays within 2× of
//     uncontended (backpressure, not collapse)
//
// With -smoke -serve-bin PATH it instead exercises a real predserve
// binary end to end: spawn, wait for the address file, issue cold and
// warm predictions, scrape /metrics to confirm the cache-hit counter
// advanced, then SIGTERM and require a clean drain. CI runs this.
//
// Usage:
//
//	predload [-out BENCH_serve.json] [-seconds 8] [-quick]
//	predload -scenario examples/scenarios/flashsale.json   # extra spec-paced phase
//	predload -smoke -serve-bin ./predserve
package main

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"flag"

	"perfpred/internal/lqn"
	"perfpred/internal/scenario"
	"perfpred/internal/serve"
	"perfpred/internal/trade"
	"perfpred/internal/workload"
)

type coldKey struct {
	Arch          string  `json:"arch"`
	BuyPct        float64 `json:"buy_pct"`
	BuildMS       float64 `json:"build_ms"`
	ColdLatencyMS float64 `json:"cold_latency_ms"`
}

type coldVsWarm struct {
	Keys            []coldKey `json:"keys"`
	MeanColdBuildMS float64   `json:"mean_cold_build_ms"`
	WarmRequests    int       `json:"warm_requests"`
	WarmP50Micros   float64   `json:"warm_p50_us"`
	WarmP99Micros   float64   `json:"warm_p99_us"`
	// ColdOverWarmP99 is mean cold build over warm p99 — the amortised
	// win of the model cache.
	ColdOverWarmP99 float64 `json:"cold_build_over_warm_p99"`
	Meets50x        bool    `json:"meets_50x"`
}

type coalescedBurst struct {
	Arch         string `json:"arch"`
	Burst        int    `json:"burst"`
	PopulationLo int    `json:"population_lo"`
	PopulationHi int    `json:"population_hi"`
	// CoalescedSweepWallMS is the batcher's work for the burst — one
	// model resolution, one warm-started solver, populations ascending
	// — measured at the solver layer both paths share.
	CoalescedSweepWallMS float64 `json:"coalesced_sweep_wall_ms"`
	// IndependentColdWallMS solves the identical populations one by
	// one, each on a freshly built model and cold solver — what N
	// uncoalesced requests would each pay.
	IndependentColdWallMS float64 `json:"independent_cold_wall_ms"`
	Speedup               float64 `json:"speedup"`
	BeatsIndependent      bool    `json:"beats_independent"`
	// ServedBurstWallMS is the same burst end to end over HTTP against
	// a one-worker batcher, for context: loopback transport (~100µs a
	// request) dominates the µs-scale solves at this model size.
	ServedBurstWallMS float64 `json:"served_burst_wall_ms"`
}

type sustained struct {
	Clients       int     `json:"clients"`
	Seconds       float64 `json:"seconds"`
	Requests      int     `json:"requests"`
	PerSec        float64 `json:"throughput_per_sec"`
	P50Micros     float64 `json:"p50_us"`
	P99Micros     float64 `json:"p99_us"`
	Errors        int     `json:"errors"`
	MeetsMillionD bool    `json:"meets_million_per_day"`
}

type overload struct {
	// MeanBuildMS is this phase's cold-build cost (short calibration:
	// the phase stresses admission control, not build depth).
	MeanBuildMS float64 `json:"mean_build_ms"`
	// OfferedPerSec is the achieved cold-key request rate; CapacityPerSec
	// is what one build worker can absorb (1000 / mean build ms).
	OfferedPerSec   float64 `json:"offered_per_sec"`
	CapacityPerSec  float64 `json:"capacity_per_sec"`
	OfferedMultiple float64 `json:"offered_multiple"`
	Accepted        int     `json:"accepted"`
	Shed429         int     `json:"shed_429"`
	UncontendedP99u float64 `json:"uncontended_p99_us"`
	OverloadedP99u  float64 `json:"overloaded_accepted_p99_us"`
	// CoreBound is set when GOMAXPROCS=1 and the 2× comparison failed:
	// a CPU-bound build must timeshare the only core with every
	// accepted handler, so contended latency there measures the
	// machine, not the admission controller (the race-tier unit test,
	// whose build workers wait instead of compute, enforces the
	// behavioural criterion). Like simbench's shard scaling, the
	// comparison is skipped rather than failed on one core.
	CoreBound bool `json:"core_bound,omitempty"`
	Within2x  bool `json:"accepted_p99_within_2x"`
}

// scenarioPaced is the optional -scenario phase: the request stream's
// arrival instants come from a declarative workload spec's generators
// (internal/scenario.Pacer) replayed in real time, so the service
// faces the spec's bursts and ramps instead of a closed loop.
type scenarioPaced struct {
	Spec      string  `json:"spec"`
	Seconds   float64 `json:"seconds"`
	Scheduled int     `json:"scheduled"`
	Issued    int     `json:"issued"`
	PerSec    float64 `json:"throughput_per_sec"`
	P50Micros float64 `json:"p50_us"`
	P99Micros float64 `json:"p99_us"`
	// MeanLagMS is how far behind its schedule the driver ran on
	// average — pacing health, not service latency.
	MeanLagMS float64 `json:"mean_lag_ms"`
	Errors    int     `json:"errors"`
	OnPace    bool    `json:"on_pace"`
}

type snapshot struct {
	Note        string         `json:"note"`
	Cores       int            `json:"cores"`
	GoMaxProcs  int            `json:"go_max_procs"`
	ColdVsWarm  coldVsWarm     `json:"cold_vs_warm"`
	Coalesced   coalescedBurst `json:"coalesced_burst"`
	Sustained   sustained      `json:"sustained"`
	Overload    overload       `json:"overload"`
	Scenario    *scenarioPaced `json:"scenario_paced,omitempty"`
	AllPass     bool           `json:"all_pass"`
	FailReasons []string       `json:"fail_reasons,omitempty"`
}

func main() {
	out := flag.String("out", "BENCH_serve.json", "snapshot path (- for stdout)")
	seconds := flag.Float64("seconds", 8, "sustained-phase duration")
	quick := flag.Bool("quick", false, "short phases for CI smoke runs")
	smoke := flag.Bool("smoke", false, "end-to-end smoke against a real predserve binary")
	serveBin := flag.String("serve-bin", "", "path to the predserve binary (smoke mode)")
	scenarioPath := flag.String("scenario", "", "add a phase that paces requests from a declarative workload spec (JSON file)")
	flag.Parse()

	if *smoke {
		if err := runSmoke(*serveBin); err != nil {
			fatal(err)
		}
		fmt.Fprintln(os.Stderr, "predload: smoke OK")
		return
	}
	if *quick && *seconds > 2 {
		*seconds = 2
	}

	snap := snapshot{
		Note: "Prediction-service load test, generated by cmd/predload against internal/serve " +
			"over HTTP loopback. Cold builds include the fixed-seed percentile calibration a " +
			"production build pays; all latencies are client-observed.",
		Cores:      runtime.NumCPU(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
	}

	snap.ColdVsWarm = runColdVsWarm()
	snap.Coalesced = runCoalesced(*quick)
	snap.Sustained = runSustained(*seconds)
	snap.Overload = runOverload()
	if *scenarioPath != "" {
		sp := runScenarioPaced(*scenarioPath, *seconds)
		snap.Scenario = &sp
		if sp.Errors > 0 {
			snap.FailReasons = append(snap.FailReasons, fmt.Sprintf(
				"scenario-paced phase saw %d request errors", sp.Errors))
		}
		if !sp.OnPace {
			snap.FailReasons = append(snap.FailReasons, fmt.Sprintf(
				"scenario-paced driver fell %.0fms behind its schedule on average", sp.MeanLagMS))
		}
	}

	if !snap.ColdVsWarm.Meets50x {
		snap.FailReasons = append(snap.FailReasons, fmt.Sprintf(
			"warm p99 only %.1fx faster than cold build, want >= 50x", snap.ColdVsWarm.ColdOverWarmP99))
	}
	if !snap.Coalesced.BeatsIndependent {
		snap.FailReasons = append(snap.FailReasons, "coalesced burst did not beat independent cold solves")
	}
	if !snap.Sustained.MeetsMillionD {
		snap.FailReasons = append(snap.FailReasons, fmt.Sprintf(
			"sustained %.1f predictions/sec under 12/sec (million/day)", snap.Sustained.PerSec))
	}
	if !snap.Overload.Within2x && !snap.Overload.CoreBound {
		snap.FailReasons = append(snap.FailReasons, "accepted p99 under overload exceeded 2x uncontended")
	}
	snap.AllPass = len(snap.FailReasons) == 0

	buf, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		fatal(err)
	}
	buf = append(buf, '\n')
	if *out == "-" {
		os.Stdout.Write(buf)
	} else if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fatal(err)
	} else {
		fmt.Fprintf(os.Stderr, "predload: wrote %s\n", *out)
	}
	if !snap.AllPass {
		fatal(fmt.Errorf("acceptance failed: %s", strings.Join(snap.FailReasons, "; ")))
	}
}

func serviceConfig() serve.Config {
	return serve.Config{
		Archs:   workload.CaseStudyServers(),
		DB:      workload.CaseStudyDB(),
		Demands: workload.CaseStudyDemands(),
		// Production defaults: percentile scale calibrated per key from
		// a fixed-seed simulator run, so cold builds carry their honest
		// cost.
		CalibrationSimSeconds: 40,
	}
}

func startService(mutate func(*serve.Config)) (*serve.Service, *httptest.Server, error) {
	cfg := serviceConfig()
	if mutate != nil {
		mutate(&cfg)
	}
	svc, err := serve.New(cfg)
	if err != nil {
		return nil, nil, err
	}
	srv := httptest.NewServer(svc.Handler())
	return svc, srv, nil
}

type predictResult struct {
	ResponseTimeS float64 `json:"response_time_s"`
	Cold          bool    `json:"cold"`
	BuildMS       float64 `json:"build_ms"`
}

func getPredict(client *http.Client, url string) (predictResult, int, error) {
	var pr predictResult
	resp, err := client.Get(url)
	if err != nil {
		return pr, 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
			return pr, resp.StatusCode, err
		}
	} else {
		_, _ = io.Copy(io.Discard, resp.Body)
	}
	return pr, resp.StatusCode, nil
}

func percentileOf(lats []time.Duration, p float64) time.Duration {
	if len(lats) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), lats...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := int(p * float64(len(sorted)))
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

func micros(d time.Duration) float64 { return float64(d) / float64(time.Microsecond) }

// runColdVsWarm builds six (architecture, mix) keys cold, then hammers
// the warm cache from one closed-loop client.
func runColdVsWarm() coldVsWarm {
	fmt.Fprintln(os.Stderr, "predload: cold-vs-warm phase")
	svc, srv, err := startService(nil)
	if err != nil {
		fatal(err)
	}
	defer func() { srv.Close(); svc.Close() }()
	client := srv.Client()

	cw := coldVsWarm{}
	var sumBuild float64
	for _, k := range []struct {
		arch   string
		buyPct float64
	}{
		{"AppServS", 0}, {"AppServF", 0}, {"AppServVF", 0},
		{"AppServS", 10}, {"AppServF", 10}, {"AppServVF", 25},
	} {
		url := fmt.Sprintf("%s/v1/predict?arch=%s&clients=500&buy_pct=%v&percentile=0.9", srv.URL, k.arch, k.buyPct)
		start := time.Now()
		pr, code, err := getPredict(client, url)
		lat := time.Since(start)
		if err != nil || code != http.StatusOK {
			fatal(fmt.Errorf("cold predict %s: code %d err %v", url, code, err))
		}
		if !pr.Cold {
			fatal(fmt.Errorf("first request for %s/%v%% was not cold", k.arch, k.buyPct))
		}
		cw.Keys = append(cw.Keys, coldKey{
			Arch: k.arch, BuyPct: k.buyPct,
			BuildMS:       pr.BuildMS,
			ColdLatencyMS: float64(lat) / float64(time.Millisecond),
		})
		sumBuild += pr.BuildMS
	}
	cw.MeanColdBuildMS = sumBuild / float64(len(cw.Keys))

	cw.WarmRequests = 2000
	lats := make([]time.Duration, 0, cw.WarmRequests)
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < cw.WarmRequests; i++ {
		k := cw.Keys[rng.Intn(len(cw.Keys))]
		url := fmt.Sprintf("%s/v1/predict?arch=%s&clients=%d&buy_pct=%v", srv.URL, k.Arch, 100+rng.Intn(2000), k.BuyPct)
		start := time.Now()
		pr, code, err := getPredict(client, url)
		if err != nil || code != http.StatusOK {
			fatal(fmt.Errorf("warm predict: code %d err %v", code, err))
		}
		if pr.Cold {
			fatal(fmt.Errorf("warm request reported cold for %s", k.Arch))
		}
		lats = append(lats, time.Since(start))
	}
	cw.WarmP50Micros = micros(percentileOf(lats, 0.50))
	cw.WarmP99Micros = micros(percentileOf(lats, 0.99))
	cw.ColdOverWarmP99 = cw.MeanColdBuildMS * 1000 / cw.WarmP99Micros
	cw.Meets50x = cw.ColdOverWarmP99 >= 50
	return cw
}

// runCoalesced fires a concurrent adjacent-population burst of exact
// layered queries at a one-worker batcher and compares the wall clock
// against solving the same populations independently and cold.
func runCoalesced(quick bool) coalescedBurst {
	fmt.Fprintln(os.Stderr, "predload: coalesced-burst phase")
	cb := coalescedBurst{Arch: "AppServF", Burst: 32, PopulationLo: 1000}
	if quick {
		cb.Burst = 16
	}
	cb.PopulationHi = cb.PopulationLo + cb.Burst - 1

	svc, srv, err := startService(func(c *serve.Config) {
		c.SolveWorkers = 1 // a single worker makes the coalescing visible
	})
	if err != nil {
		fatal(err)
	}
	defer func() { srv.Close(); svc.Close() }()
	client := srv.Client()

	// Prime the worker's model state so the burst measures coalescing,
	// not the one-off model construction both sides pay.
	if _, code, err := getPredict(client, fmt.Sprintf("%s/v1/predict?arch=%s&clients=%d&method=lqn", srv.URL, cb.Arch, cb.PopulationLo)); err != nil || code != http.StatusOK {
		fatal(fmt.Errorf("prime lqn state: code %d err %v", code, err))
	}

	var wg sync.WaitGroup
	start := time.Now()
	errs := make(chan error, cb.Burst)
	for i := 0; i < cb.Burst; i++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			url := fmt.Sprintf("%s/v1/predict?arch=%s&clients=%d&method=lqn", srv.URL, cb.Arch, n)
			if _, code, err := getPredict(client, url); err != nil || code != http.StatusOK {
				errs <- fmt.Errorf("burst n=%d: code %d err %v", n, code, err)
			}
		}(cb.PopulationLo + i)
	}
	wg.Wait()
	cb.ServedBurstWallMS = float64(time.Since(start)) / float64(time.Millisecond)
	close(errs)
	for err := range errs {
		fatal(err)
	}

	// The coalescing comparison itself runs at the solver layer the
	// two paths share, so transport cost (identical either way in a
	// served setting) doesn't drown the µs-scale solves. The sweep is
	// exactly what a batch worker does with the burst: one model, one
	// warm-started solver, populations ascending. Best-of-3 each way
	// to keep a single scheduler hiccup from deciding the verdict.
	db, demands := workload.CaseStudyDB(), workload.CaseStudyDemands()
	arch := workload.AppServF()
	sweepWall := time.Duration(1 << 62)
	for rep := 0; rep < 3; rep++ {
		start = time.Now()
		model, err := lqn.NewTradeModel(arch, db, demands, workload.TypicalWorkload(1))
		if err != nil {
			fatal(err)
		}
		solver := lqn.NewSolver()
		solver.WarmStart = true
		for i := 0; i < cb.Burst; i++ {
			for ci, p := range workload.TypicalWorkload(cb.PopulationLo + i) {
				model.Classes[ci].Population = p.Clients
			}
			if _, err := solver.Solve(model, lqn.Options{}); err != nil {
				fatal(err)
			}
		}
		if w := time.Since(start); w < sweepWall {
			sweepWall = w
		}
	}
	coldWall := time.Duration(1 << 62)
	for rep := 0; rep < 3; rep++ {
		start = time.Now()
		for i := 0; i < cb.Burst; i++ {
			n := cb.PopulationLo + i
			model, err := lqn.NewTradeModel(arch, db, demands, workload.TypicalWorkload(n))
			if err != nil {
				fatal(err)
			}
			if _, err := lqn.NewSolver().Solve(model, lqn.Options{}); err != nil {
				fatal(err)
			}
		}
		if w := time.Since(start); w < coldWall {
			coldWall = w
		}
	}
	cb.CoalescedSweepWallMS = float64(sweepWall) / float64(time.Millisecond)
	cb.IndependentColdWallMS = float64(coldWall) / float64(time.Millisecond)
	cb.Speedup = cb.IndependentColdWallMS / cb.CoalescedSweepWallMS
	cb.BeatsIndependent = cb.Speedup > 1
	return cb
}

// streamSpec holds the trade-simulator-derived shape of one
// architecture's request stream: populations around the simulated
// operating point and SLA goals around the simulated mean response
// time.
type streamSpec struct {
	arch   string
	knee   int     // simulated operating-point population
	goalRT float64 // capacity-query SLA goal, from the sim's mean RT
}

// deriveStreams runs a short fixed-seed trade simulation per
// architecture at the standard buy mix and shapes the load phases'
// request streams from what the simulator measured — the service is
// asked about the operating points the simulator actually visited.
func deriveStreams() []streamSpec {
	var specs []streamSpec
	for _, arch := range workload.CaseStudyServers() {
		knee := int(arch.MaxThroughputTypical * (workload.ThinkTimeMean + 1) * 0.8)
		res, err := trade.Run(trade.Config{
			Server:   arch,
			DB:       workload.CaseStudyDB(),
			Demands:  workload.CaseStudyDemands(),
			Load:     workload.MixedWorkload(knee, workload.StandardBuyFraction),
			Seed:     7,
			WarmUp:   2,
			Duration: 10,
		})
		if err != nil {
			fatal(err)
		}
		specs = append(specs, streamSpec{arch: arch.Name, knee: knee, goalRT: 1.5 * res.MeanRT})
	}
	return specs
}

// runSustained drives a closed-loop mixed request stream and reports
// throughput and latency percentiles.
func runSustained(seconds float64) sustained {
	fmt.Fprintln(os.Stderr, "predload: sustained phase")
	svc, srv, err := startService(nil)
	if err != nil {
		fatal(err)
	}
	defer func() { srv.Close(); svc.Close() }()
	specs := deriveStreams()

	st := sustained{Clients: 8, Seconds: seconds}
	deadline := time.Now().Add(time.Duration(seconds * float64(time.Second)))
	var mu sync.Mutex
	var all []time.Duration
	var errCount atomic.Int32
	var wg sync.WaitGroup
	for w := 0; w < st.Clients; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			client := srv.Client()
			rng := rand.New(rand.NewSource(int64(100 + w)))
			var lats []time.Duration
			for time.Now().Before(deadline) {
				spec := specs[rng.Intn(len(specs))]
				n := spec.knee/2 + rng.Intn(spec.knee)
				var url string
				switch r := rng.Float64(); {
				case r < 0.60: // mean prediction, mixed keys
					url = fmt.Sprintf("%s/v1/predict?arch=%s&clients=%d&buy_pct=%d", srv.URL, spec.arch, n, 5*rng.Intn(3))
				case r < 0.75: // percentile prediction
					url = fmt.Sprintf("%s/v1/predict?arch=%s&clients=%d&percentile=0.9", srv.URL, spec.arch, n)
				case r < 0.90: // capacity under the sim-derived goal
					url = fmt.Sprintf("%s/v1/capacity?arch=%s&goal_rt_s=%.4f", srv.URL, spec.arch, spec.goalRT)
				default: // exact layered solve through the batcher
					url = fmt.Sprintf("%s/v1/predict?arch=%s&clients=%d&method=lqn", srv.URL, spec.arch, n)
				}
				start := time.Now()
				_, code, err := getPredict(client, url)
				if err != nil || code != http.StatusOK {
					errCount.Add(1)
					continue
				}
				lats = append(lats, time.Since(start))
			}
			mu.Lock()
			all = append(all, lats...)
			mu.Unlock()
		}(w)
	}
	wg.Wait()
	st.Requests = len(all)
	st.PerSec = float64(len(all)) / seconds
	st.P50Micros = micros(percentileOf(all, 0.50))
	st.P99Micros = micros(percentileOf(all, 0.99))
	st.Errors = int(errCount.Load())
	st.MeetsMillionD = st.PerSec >= 12
	return st
}

// runScenarioPaced replays a declarative workload spec's arrival
// stream against the service in real time: each generated arrival
// becomes one HTTP request issued at its scheduled instant (browse →
// mean prediction, buy → 90th-percentile prediction, anything else →
// an exact layered solve through the batcher). One warm-up request
// per key is issued off the clock so the pacing measures serving, not
// cold builds.
func runScenarioPaced(path string, seconds float64) scenarioPaced {
	fmt.Fprintln(os.Stderr, "predload: scenario-paced phase")
	spec, err := scenario.Load(path)
	if err != nil {
		fatal(err)
	}
	svc, srv, err := startService(nil)
	if err != nil {
		fatal(err)
	}
	defer func() { srv.Close(); svc.Close() }()
	client := srv.Client()
	arch := workload.AppServF().Name
	knee := int(workload.AppServF().MaxThroughputTypical * (workload.ThinkTimeMean + 1) * 0.8)
	urlFor := func(rt workload.RequestType, i int) string {
		n := knee/2 + i%knee
		switch rt {
		case workload.Browse:
			return fmt.Sprintf("%s/v1/predict?arch=%s&clients=%d&buy_pct=%d", srv.URL, arch, n, 5*(i%3))
		case workload.Buy:
			return fmt.Sprintf("%s/v1/predict?arch=%s&clients=%d&percentile=0.9", srv.URL, arch, n)
		default:
			return fmt.Sprintf("%s/v1/predict?arch=%s&clients=%d&method=lqn", srv.URL, arch, n)
		}
	}
	for i, rt := range []workload.RequestType{workload.Browse, workload.Buy, ""} {
		if _, _, err := getPredict(client, urlFor(rt, i)); err != nil {
			fatal(err)
		}
	}

	st := scenarioPaced{Spec: spec.Name, Seconds: seconds}
	pacer := scenario.NewPacer(spec, 41)
	var lats []time.Duration
	var lagSum float64
	start := time.Now()
	for {
		a, ok := pacer.Next()
		if !ok || a.T > seconds {
			break
		}
		st.Scheduled++
		due := start.Add(time.Duration(a.T * float64(time.Second)))
		if d := time.Until(due); d > 0 {
			time.Sleep(d)
		} else {
			lagSum += -d.Seconds()
		}
		reqStart := time.Now()
		_, code, err := getPredict(client, urlFor(a.Type, st.Scheduled))
		if err != nil || code != http.StatusOK {
			st.Errors++
			continue
		}
		st.Issued++
		lats = append(lats, time.Since(reqStart))
	}
	elapsed := time.Since(start).Seconds()
	if elapsed > 0 {
		st.PerSec = float64(st.Issued) / elapsed
	}
	if st.Scheduled > 0 {
		st.MeanLagMS = 1000 * lagSum / float64(st.Scheduled)
	}
	st.P50Micros = micros(percentileOf(lats, 0.50))
	st.P99Micros = micros(percentileOf(lats, 0.99))
	st.OnPace = st.MeanLagMS < 100
	return st
}

// runOverload offers cold-key builds at ≥10× what the single build
// worker can absorb while a warm client keeps measuring, then checks
// the service shed with 429s without hurting accepted latency.
func runOverload() overload {
	fmt.Fprintln(os.Stderr, "predload: overload phase")
	svc, srv, err := startService(func(c *serve.Config) {
		c.BuildWorkers = 1
		c.MaxQueuedBuilds = 1
		// A small cache keeps cold misses coming for the whole phase
		// instead of the flood warming every key it will ever ask for.
		c.CacheCapacity = 64
	})
	if err != nil {
		fatal(err)
	}
	defer func() { srv.Close(); svc.Close() }()
	client := srv.Client()

	ov := overload{}
	// Probe this configuration's build cost on a few cold keys.
	var buildSum float64
	for i, arch := range []string{"AppServF", "AppServS", "AppServVF"} {
		pr, code, err := getPredict(client, fmt.Sprintf("%s/v1/predict?arch=%s&clients=500&buy_pct=%d", srv.URL, arch, 30+i))
		if err != nil || code != http.StatusOK || !pr.Cold {
			fatal(fmt.Errorf("overload build probe: code %d cold=%v err %v", code, pr.Cold, err))
		}
		buildSum += pr.BuildMS
	}
	ov.MeanBuildMS = buildSum / 3
	ov.CapacityPerSec = 1000 / ov.MeanBuildMS

	warmURL := srv.URL + "/v1/predict?arch=AppServF&clients=500"
	if _, code, err := getPredict(client, warmURL); err != nil || code != http.StatusOK {
		fatal(fmt.Errorf("overload warm-up: code %d err %v", code, err))
	}
	warmP99 := func(n int) time.Duration {
		lats := make([]time.Duration, 0, n)
		for i := 0; i < n; i++ {
			start := time.Now()
			if _, code, err := getPredict(client, warmURL); err != nil || code != http.StatusOK {
				fatal(fmt.Errorf("overload warm probe: code %d err %v", code, err))
			}
			lats = append(lats, time.Since(start))
		}
		return percentileOf(lats, 0.99)
	}
	uncontended := warmP99(300)

	// Flood: distinct cold mixes from enough closed-loop flooders to
	// offer well past 10× the single worker's build capacity.
	const flooders = 64
	var accepted, shed atomic.Int32
	var offered atomic.Int64
	stop := make(chan struct{})
	var floodWG sync.WaitGroup
	floodStart := time.Now()
	for g := 0; g < flooders; g++ {
		floodWG.Add(1)
		go func(g int) {
			defer floodWG.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				offered.Add(1)
				url := fmt.Sprintf("%s/v1/predict?arch=AppServS&clients=100&buy_pct=%d.%d",
					srv.URL, rng.Intn(90), rng.Intn(10))
				_, code, err := getPredict(client, url)
				switch {
				case err != nil:
					fatal(fmt.Errorf("flood: %v", err))
				case code == http.StatusTooManyRequests:
					shed.Add(1)
				case code == http.StatusOK:
					accepted.Add(1)
				}
			}
		}(g)
	}
	contended := warmP99(300)
	floodWall := time.Since(floodStart).Seconds()
	close(stop)
	floodWG.Wait()

	ov.OfferedPerSec = float64(offered.Load()) / floodWall
	ov.OfferedMultiple = ov.OfferedPerSec / ov.CapacityPerSec
	ov.Accepted = int(accepted.Load())
	ov.Shed429 = int(shed.Load())
	ov.UncontendedP99u = micros(uncontended)
	ov.OverloadedP99u = micros(contended)
	ov.Within2x = contended <= 2*uncontended
	ov.CoreBound = !ov.Within2x && runtime.GOMAXPROCS(0) == 1
	if ov.Shed429 == 0 {
		fatal(fmt.Errorf("overload phase shed nothing: no 429s"))
	}
	return ov
}

// runSmoke exercises a real predserve binary end to end.
func runSmoke(serveBin string) error {
	if serveBin == "" {
		return fmt.Errorf("smoke mode needs -serve-bin")
	}
	dir, err := os.MkdirTemp("", "predload-smoke")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	addrFile := filepath.Join(dir, "addr")

	cmd := exec.Command(serveBin, "-addr", "127.0.0.1:0", "-addr-file", addrFile, "-calib-seconds", "10")
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return fmt.Errorf("starting %s: %w", serveBin, err)
	}
	defer func() {
		if cmd.ProcessState == nil {
			_ = cmd.Process.Kill()
			_ = cmd.Wait()
		}
	}()

	var addr string
	for i := 0; i < 100; i++ {
		if buf, err := os.ReadFile(addrFile); err == nil && len(buf) > 0 {
			addr = strings.TrimSpace(string(buf))
			break
		}
		time.Sleep(100 * time.Millisecond)
	}
	if addr == "" {
		return fmt.Errorf("predserve never wrote %s", addrFile)
	}
	base := "http://" + addr
	client := &http.Client{Timeout: 30 * time.Second}

	resp, err := client.Get(base + "/healthz")
	if err != nil {
		return fmt.Errorf("healthz: %w", err)
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("healthz: status %d", resp.StatusCode)
	}

	predictURL := base + "/v1/predict?arch=AppServF&clients=500"
	pr, code, err := getPredict(client, predictURL)
	if err != nil || code != http.StatusOK {
		return fmt.Errorf("cold predict: code %d err %v", code, err)
	}
	if !pr.Cold || pr.ResponseTimeS <= 0 {
		return fmt.Errorf("cold predict: cold=%v rt=%v", pr.Cold, pr.ResponseTimeS)
	}
	hits0, err := scrapeCounter(client, base+"/metrics", "serve_cache_hits")
	if err != nil {
		return err
	}
	for i := 0; i < 3; i++ {
		pr, code, err = getPredict(client, predictURL)
		if err != nil || code != http.StatusOK || pr.Cold {
			return fmt.Errorf("warm predict %d: code %d cold=%v err %v", i, code, pr.Cold, err)
		}
	}
	hits1, err := scrapeCounter(client, base+"/metrics", "serve_cache_hits")
	if err != nil {
		return err
	}
	if hits1 < hits0+3 {
		return fmt.Errorf("cache-hit counter did not advance: %d -> %d", hits0, hits1)
	}

	// Graceful drain: SIGTERM must produce a clean exit.
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		return err
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			return fmt.Errorf("predserve exited dirty after SIGTERM: %w", err)
		}
	case <-time.After(20 * time.Second):
		return fmt.Errorf("predserve did not drain within 20s of SIGTERM")
	}
	return nil
}

// scrapeCounter pulls one `name value` line from the /metrics dump.
func scrapeCounter(client *http.Client, url, name string) (int64, error) {
	resp, err := client.Get(url)
	if err != nil {
		return 0, fmt.Errorf("scraping %s: %w", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, err
	}
	for _, ln := range strings.Split(string(body), "\n") {
		fields := strings.Fields(ln)
		if len(fields) == 2 && fields[0] == name {
			return strconv.ParseInt(fields[1], 10, 64)
		}
	}
	return 0, fmt.Errorf("metric %s not found in %s dump", name, url)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "predload:", err)
	os.Exit(1)
}
