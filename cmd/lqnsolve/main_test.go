package main

import (
	"math"
	"os"
	"path/filepath"
	"testing"
)

func TestParseGoal(t *testing.T) {
	class, goal, err := parseGoal("browse:0.3")
	if err != nil {
		t.Fatal(err)
	}
	if class != "browse" || math.Abs(goal-0.3) > 1e-12 {
		t.Fatalf("parsed %q %v", class, goal)
	}
	if _, _, err := parseGoal("browse"); err == nil {
		t.Fatal("missing goal should fail")
	}
	if _, _, err := parseGoal("browse:abc"); err == nil {
		t.Fatal("non-numeric goal should fail")
	}
}

func TestServerByName(t *testing.T) {
	for _, name := range []string{"AppServS", "AppServF", "AppServVF"} {
		s, err := serverByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if s.Name != name {
			t.Fatalf("got %q", s.Name)
		}
	}
	if _, err := serverByName("AppServX"); err == nil {
		t.Fatal("unknown server should fail")
	}
}

func TestLoadModelTrade(t *testing.T) {
	m, err := loadModel(true, "AppServF", 100, 0.1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if _, err := loadModel(true, "nope", 100, 0, nil); err == nil {
		t.Fatal("bad server should fail")
	}
}

func TestLoadModelFile(t *testing.T) {
	doc := `{"processors":[{"name":"cpu","mult":1,"speed":1,"sched":"ps"}],
	         "tasks":[{"name":"app","processor":"cpu","mult":5,
	                   "entries":[{"name":"op","demand":0.02}]}],
	         "classes":[{"name":"users","population":10,"think":1,
	                     "calls":[{"target":"op","mean":1}]}]}`
	path := filepath.Join(t.TempDir(), "model.json")
	if err := os.WriteFile(path, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	m, err := loadModel(false, "", 0, 0, []string{path})
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Classes) != 1 {
		t.Fatalf("classes = %d", len(m.Classes))
	}
	if _, err := loadModel(false, "", 0, 0, nil); err == nil {
		t.Fatal("missing file arg should fail")
	}
	if _, err := loadModel(false, "", 0, 0, []string{"/nonexistent.json"}); err == nil {
		t.Fatal("missing file should fail")
	}
}
