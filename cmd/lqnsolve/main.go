// Command lqnsolve solves a layered queuing network model from a JSON
// document and prints per-class response times, throughputs and
// processor utilisations — the role LQNS plays in the paper.
//
// Usage:
//
//	lqnsolve [-convergence 1e-6] [-exact] [-maxclients class:goal] model.json
//	lqnsolve -trade -server AppServF -clients 800 [-buy 0.25]
//
// With -trade the case-study model is built in-process instead of read
// from a file. -maxclients runs the §8.2 capacity search for
// "class:goalSeconds".
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"strconv"
	"strings"

	"perfpred/internal/lqn"
	"perfpred/internal/workload"
)

func main() {
	convergence := flag.Float64("convergence", 1e-6, "solver convergence criterion in seconds (paper: 0.020)")
	exact := flag.Bool("exact", false, "use exact single-class MVA instead of the Schweitzer approximation")
	layered := flag.Bool("layered", false, "solve with task-layer (thread pool) contention")
	maxClients := flag.String("maxclients", "", "search max clients for 'class:goalSeconds' (e.g. browse:0.3)")
	useTrade := flag.Bool("trade", false, "build the case-study Trade model instead of reading a file")
	server := flag.String("server", "AppServF", "case-study server for -trade (AppServS|AppServF|AppServVF)")
	clients := flag.Int("clients", 500, "client population for -trade")
	buy := flag.Float64("buy", 0, "buy-client fraction for -trade (0..1)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fatal(err)
			}
		}()
	}

	opt := lqn.Options{Convergence: *convergence, ExactMVA: *exact, TaskLayering: *layered}
	model, err := loadModel(*useTrade, *server, *clients, *buy, flag.Args())
	if err != nil {
		fatal(err)
	}

	if *maxClients != "" {
		class, goal, err := parseGoal(*maxClients)
		if err != nil {
			fatal(err)
		}
		n, evals, err := lqn.MaxClientsSearch(model, class, goal, 1<<20, opt)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("max clients for %s under %.3fs: %d (%d solver evaluations)\n", class, goal, n, evals)
		return
	}

	res, err := lqn.Solve(model, opt)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("solved in %s (%d iterations, converged=%v)\n", res.SolveTime, res.Iterations, res.Converged)
	names := make([]string, 0, len(res.Classes))
	for name := range res.Classes {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		c := res.Classes[name]
		fmt.Printf("  class %-12s RT=%8.2fms  X=%8.2f/s\n", name, c.ResponseTime*1000, c.Throughput)
	}
	procs := make([]string, 0, len(res.ProcessorUtil))
	for name := range res.ProcessorUtil {
		procs = append(procs, name)
	}
	sort.Strings(procs)
	for _, name := range procs {
		fmt.Printf("  processor %-9s U=%6.3f\n", name, res.ProcessorUtil[name])
	}
}

func loadModel(useTrade bool, server string, clients int, buy float64, args []string) (*lqn.Model, error) {
	if useTrade {
		arch, err := serverByName(server)
		if err != nil {
			return nil, err
		}
		var load workload.Workload
		if buy > 0 {
			load = workload.MixedWorkload(clients, buy)
		} else {
			load = workload.TypicalWorkload(clients)
		}
		return lqn.NewTradeModel(arch, workload.CaseStudyDB(), workload.CaseStudyDemands(), load)
	}
	if len(args) != 1 {
		return nil, fmt.Errorf("usage: lqnsolve [flags] model.json (or -trade)")
	}
	f, err := os.Open(args[0])
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return lqn.ReadModel(f)
}

func serverByName(name string) (workload.ServerArch, error) {
	for _, s := range workload.CaseStudyServers() {
		if s.Name == name {
			return s, nil
		}
	}
	return workload.ServerArch{}, fmt.Errorf("unknown server %q (want AppServS, AppServF or AppServVF)", name)
}

func parseGoal(s string) (string, float64, error) {
	parts := strings.SplitN(s, ":", 2)
	if len(parts) != 2 {
		return "", 0, fmt.Errorf("want class:goalSeconds, got %q", s)
	}
	goal, err := strconv.ParseFloat(parts[1], 64)
	if err != nil {
		return "", 0, fmt.Errorf("bad goal in %q: %w", s, err)
	}
	return parts[0], goal, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "lqnsolve:", err)
	os.Exit(1)
}
