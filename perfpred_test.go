package perfpred

import (
	"bytes"
	"strings"
	"testing"
)

// TestFacadeQuickstart walks the README's quickstart through the public
// API only: calibrate all three methods, predict the new server, and
// run one resource-management planning cycle.
func TestFacadeQuickstart(t *testing.T) {
	opt := MeasureOptions{Seed: 77, WarmUp: 30, Duration: 100}

	// Historical method: calibrate AppServF from measured data points.
	xMax, err := MeasureMaxThroughput(AppServF(), 0, opt)
	if err != nil {
		t.Fatal(err)
	}
	nStar := xMax / 0.14
	curve, err := MeasureCurve(AppServF(), []int{int(0.3 * nStar), int(0.55 * nStar), int(1.2 * nStar), int(1.6 * nStar)}, 0, opt)
	if err != nil {
		t.Fatal(err)
	}
	var dps []DataPoint
	var tps []ThroughputPoint
	for _, p := range curve {
		dps = append(dps, DataPoint{Clients: float64(p.Clients), MeanRT: p.Res.MeanRT})
		if float64(p.Clients) < 0.66*nStar {
			tps = append(tps, ThroughputPoint{Clients: float64(p.Clients), Throughput: p.Res.Throughput})
		}
	}
	m, err := CalibrateGradient(tps)
	if err != nil {
		t.Fatal(err)
	}
	histF, err := CalibrateHistorical(AppServF(), xMax, m, dps)
	if err != nil {
		t.Fatal(err)
	}
	if rt := histF.Predict(800); rt <= 0 {
		t.Fatalf("historical prediction = %v", rt)
	}

	// Layered queuing method on the case-study demands.
	lq, err := PredictTrade(AppServF(), CaseStudyDemands(), TypicalWorkload(800), LQNOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if lq.MeanResponseTime() <= 0 {
		t.Fatal("LQN predicted non-positive RT")
	}

	// Hybrid method.
	hyb, err := BuildHybrid(HybridConfig{DB: CaseStudyDB(), Demands: CaseStudyDemands()}, CaseStudyServers())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := hyb.Predict("AppServS", 400); err != nil {
		t.Fatal(err)
	}

	// Percentile extension.
	p90, err := PercentileFromMean(0.1, false, PaperLaplaceScale/1000, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if p90 <= 0.1 {
		t.Fatalf("p90 = %v", p90)
	}

	// Resource management with the hybrid predictor.
	classes, err := SplitLoad(3000, RMCaseStudyShares())
	if err != nil {
		t.Fatal(err)
	}
	plan, err := Allocate(classes, RMCaseStudyServers(), hyb, 1.1, RMOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Allocations) == 0 {
		t.Fatal("empty plan")
	}
	res, err := EvaluatePlan(plan, classes, RMCaseStudyServers(), hyb, RMEvalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.ServerUsagePct <= 0 {
		t.Fatalf("usage = %v", res.ServerUsagePct)
	}
}

func TestFacadeLQNModelJSON(t *testing.T) {
	model, err := NewTradeModel(AppServF(), CaseStudyDB(), CaseStudyDemands(), TypicalWorkload(200))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteLQNModel(&buf, model); err != nil {
		t.Fatal(err)
	}
	back, err := ReadLQNModel(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	res, err := SolveLQN(back, LQNOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalThroughput() <= 0 {
		t.Fatal("round-tripped model solved to zero throughput")
	}
}

func TestExperimentsList(t *testing.T) {
	names := Experiments()
	if len(names) < 14 {
		t.Fatalf("only %d experiments registered", len(names))
	}
	want := map[string]bool{"table1": true, "table2": true, "figure2": true, "figure7": true}
	for _, n := range names {
		delete(want, n)
	}
	if len(want) != 0 {
		t.Fatalf("missing experiments: %v", want)
	}
}
